package obs

import (
	"fmt"
	"sort"

	"memfwd/internal/report"
)

// HeatObject is the accumulated access profile of one allocation block.
// Counters decay by halving every epoch so the map tracks current heat,
// not lifetime totals; Loads/Stores therefore approximate a
// recency-weighted access rate rather than an exact count.
type HeatObject struct {
	Base  uint64 `json:"base"`  // allocation base address
	Bytes uint64 `json:"bytes"` // allocation size
	Live  bool   `json:"live"`  // false once freed

	Loads     uint64 `json:"loads"`
	Stores    uint64 `json:"stores"`
	Forwarded uint64 `json:"forwarded"` // accesses that took >= 1 hop
	Hops      uint64 `json:"hops"`      // total hops across accesses
	MaxHops   int    `json:"maxHops"`   // longest chain ever walked here
	Traps     uint64 `json:"traps"`
	TrapCyc   uint64 `json:"trapCycles"` // cycles spent in trap handling
}

// heat returns the eviction/ranking temperature of an object.
func (o *HeatObject) heat() uint64 { return o.Loads + o.Stores }

// HeatSnapshot is an immutable reading of a HeatMap, safe to hand to
// another goroutine (the HTTP telemetry plane publishes these).
type HeatSnapshot struct {
	Objects   int          `json:"objects"`
	Live      int          `json:"live"`
	Evicted   uint64       `json:"evicted"`
	Untracked uint64       `json:"untracked"`
	Epochs    uint64       `json:"epochs"`
	Hottest   []HeatObject `json:"hottest"`
	Chains    []HeatObject `json:"chains"`
}

// Heat map defaults.
const (
	// DefaultHeatObjects bounds the table; at capacity the coldest
	// (preferring already-freed) entry is evicted.
	DefaultHeatObjects = 4096
	// DefaultHeatEpoch is how many recorded accesses pass between decay
	// epochs (each epoch halves every counter).
	DefaultHeatEpoch = 1 << 20
)

// HeatMap is a bounded, epoch-decayed per-object access profile keyed
// by allocation block identity — the promote/demote input an online
// tiering optimizer needs. It is fed from the machine's existing hook
// points (Malloc/Free/Load/Store/trap) behind nil checks, so a machine
// without one attached pays a single predictable branch and zero
// allocations per access.
//
// Word-to-object resolution uses an exact per-word index (objects are
// word-aligned, so every word belongs to at most one block); accesses
// to words outside any tracked block (stack, globals, evicted blocks)
// count in Untracked.
//
// Like the Machine it instruments, a HeatMap is not safe for concurrent
// use; concurrent readers get Snapshot copies.
type HeatMap struct {
	objs  map[uint64]*HeatObject // base -> profile
	index map[uint64]uint64      // word addr >> 3 -> base

	maxObjects int
	epochEvery uint64
	sinceEpoch uint64

	epochs    uint64
	evicted   uint64
	untracked uint64
}

// NewHeatMap builds a heat map bounded to maxObjects entries with a
// decay epoch every epochEvery accesses (<= 0 takes the defaults).
func NewHeatMap(maxObjects int, epochEvery uint64) *HeatMap {
	if maxObjects <= 0 {
		maxObjects = DefaultHeatObjects
	}
	if epochEvery == 0 {
		epochEvery = DefaultHeatEpoch
	}
	return &HeatMap{
		objs:       make(map[uint64]*HeatObject, maxObjects),
		index:      make(map[uint64]uint64),
		maxObjects: maxObjects,
		epochEvery: epochEvery,
	}
}

// OnAlloc registers a new allocation block (nil-safe). Reusing a base
// address replaces the previous (necessarily dead) entry.
func (h *HeatMap) OnAlloc(base, bytes uint64) {
	if h == nil {
		return
	}
	if old, ok := h.objs[base]; ok {
		// The allocator reused an address; the old block is gone.
		h.dropIndex(old)
	} else if len(h.objs) >= h.maxObjects {
		h.evictColdest()
	}
	o := &HeatObject{Base: base, Bytes: bytes, Live: true}
	h.objs[base] = o
	for w := base >> 3; w < (base+bytes+7)>>3; w++ {
		h.index[w] = base
	}
}

// OnFree marks a block dead (nil-safe). The profile is retained — a
// dead-but-hot object is still interesting to Top queries — but its
// words no longer resolve and it is first in line for eviction.
func (h *HeatMap) OnFree(base uint64) {
	if h == nil {
		return
	}
	o, ok := h.objs[base]
	if !ok {
		return
	}
	o.Live = false
	h.dropIndex(o)
}

func (h *HeatMap) dropIndex(o *HeatObject) {
	for w := o.Base >> 3; w < (o.Base+o.Bytes+7)>>3; w++ {
		if h.index[w] == o.Base {
			delete(h.index, w)
		}
	}
}

// evictColdest removes the lowest-heat entry, preferring dead blocks:
// a freed object is evicted before any live one regardless of heat.
func (h *HeatMap) evictColdest() {
	var victim *HeatObject
	for _, o := range h.objs {
		if victim == nil {
			victim = o
			continue
		}
		switch {
		case victim.Live && !o.Live:
			victim = o
		case victim.Live == o.Live &&
			(o.heat() < victim.heat() ||
				(o.heat() == victim.heat() && o.Base < victim.Base)):
			victim = o
		}
	}
	if victim == nil {
		return
	}
	if victim.Live {
		h.dropIndex(victim)
	}
	delete(h.objs, victim.Base)
	h.evicted++
}

// lookup resolves a word address to its tracked object, if any.
func (h *HeatMap) lookup(addr uint64) *HeatObject {
	base, ok := h.index[addr>>3]
	if !ok {
		return nil
	}
	return h.objs[base]
}

// Resolve maps an address to the base of the tracked allocation block
// containing it (nil-safe). The attribution profiler uses this to key
// trap profiles by object identity rather than raw address.
func (h *HeatMap) Resolve(addr uint64) (base uint64, ok bool) {
	if h == nil {
		return 0, false
	}
	o := h.lookup(addr)
	if o == nil {
		return 0, false
	}
	return o.Base, true
}

// Get returns a copy of the tracked profile for the block at base
// (nil-safe). The tiering daemon uses it to read the current decayed
// heat of a specific resident object when ranking demotion victims.
func (h *HeatMap) Get(base uint64) (HeatObject, bool) {
	if h == nil {
		return HeatObject{}, false
	}
	o, ok := h.objs[base]
	if !ok {
		return HeatObject{}, false
	}
	return *o, true
}

// RecordAccess attributes one load or store (nil-safe). initial is the
// address the program issued (object identity follows the original
// location so heat survives relocation until the chain is collapsed);
// hops is the forwarding chain length walked (0 = direct).
func (h *HeatMap) RecordAccess(initial, final uint64, store bool, hops int) {
	if h == nil {
		return
	}
	o := h.lookup(initial)
	if o == nil && final != initial {
		// Relocated object whose source block was never tracked (or
		// evicted): fall back to the data's current home.
		o = h.lookup(final)
	}
	if o == nil {
		h.untracked++
		return
	}
	if store {
		o.Stores++
	} else {
		o.Loads++
	}
	if hops > 0 {
		o.Forwarded++
		o.Hops += uint64(hops)
		if hops > o.MaxHops {
			o.MaxHops = hops
		}
	}
	h.tick()
}

// RecordTrap attributes one forwarding trap and its handling cost.
func (h *HeatMap) RecordTrap(initial uint64, cycles int64) {
	if h == nil {
		return
	}
	o := h.lookup(initial)
	if o == nil {
		h.untracked++
		return
	}
	o.Traps++
	if cycles > 0 {
		o.TrapCyc += uint64(cycles)
	}
}

// tick advances the epoch clock; every epochEvery recorded accesses the
// counters halve, and dead entries that decay to zero heat are dropped.
func (h *HeatMap) tick() {
	h.sinceEpoch++
	if h.sinceEpoch < h.epochEvery {
		return
	}
	h.sinceEpoch = 0
	h.epochs++
	for base, o := range h.objs {
		o.Loads >>= 1
		o.Stores >>= 1
		o.Forwarded >>= 1
		o.Hops >>= 1
		o.Traps >>= 1
		o.TrapCyc >>= 1
		if !o.Live && o.heat() == 0 {
			delete(h.objs, base)
		}
	}
}

// Len returns the number of tracked objects.
func (h *HeatMap) Len() int {
	if h == nil {
		return 0
	}
	return len(h.objs)
}

// Untracked returns the count of accesses that resolved to no tracked
// object.
func (h *HeatMap) Untracked() uint64 {
	if h == nil {
		return 0
	}
	return h.untracked
}

// top returns up to k object copies sorted by less (ties broken by
// ascending base for determinism), skipping entries where skip is true.
func (h *HeatMap) top(k int, skip func(*HeatObject) bool, less func(a, b *HeatObject) bool) []HeatObject {
	if h == nil || k <= 0 {
		return nil
	}
	objs := make([]*HeatObject, 0, len(h.objs))
	for _, o := range h.objs {
		if skip != nil && skip(o) {
			continue
		}
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool {
		if less(objs[i], objs[j]) {
			return true
		}
		if less(objs[j], objs[i]) {
			return false
		}
		return objs[i].Base < objs[j].Base
	})
	if len(objs) > k {
		objs = objs[:k]
	}
	out := make([]HeatObject, len(objs))
	for i, o := range objs {
		out[i] = *o
	}
	return out
}

// Top returns the k hottest objects (loads+stores, decayed) hottest
// first.
func (h *HeatMap) Top(k int) []HeatObject {
	return h.top(k, nil, func(a, b *HeatObject) bool { return a.heat() > b.heat() })
}

// LongestChains returns the k live objects with the longest observed
// forwarding chains, longest first — the demotion/collapse candidates.
func (h *HeatMap) LongestChains(k int) []HeatObject {
	return h.top(k,
		func(o *HeatObject) bool { return !o.Live || o.MaxHops == 0 },
		func(a, b *HeatObject) bool { return a.MaxHops > b.MaxHops })
}

// Snapshot returns an immutable digest with the top-k rankings.
func (h *HeatMap) Snapshot(k int) HeatSnapshot {
	if h == nil {
		return HeatSnapshot{}
	}
	live := 0
	for _, o := range h.objs {
		if o.Live {
			live++
		}
	}
	return HeatSnapshot{
		Objects:   len(h.objs),
		Live:      live,
		Evicted:   h.evicted,
		Untracked: h.untracked,
		Epochs:    h.epochs,
		Hottest:   h.Top(k),
		Chains:    h.LongestChains(k),
	}
}

// RegisterMetrics attaches the heat map's own accounting to a registry.
func (h *HeatMap) RegisterMetrics(r *Registry) {
	r.GaugeFunc("heat.objects", func() float64 { return float64(len(h.objs)) })
	r.GaugeFunc("heat.evicted", func() float64 { return float64(h.evicted) })
	r.GaugeFunc("heat.untracked", func() float64 { return float64(h.untracked) })
	r.GaugeFunc("heat.epochs", func() float64 { return float64(h.epochs) })
}

// Report renders the top-k hottest objects as a table.
func (h *HeatMap) Report(k int) *report.Table {
	t := report.New(fmt.Sprintf("Heat map (top %d objects by decayed loads+stores)", k),
		"base", "bytes", "live", "loads", "stores", "fwd", "hops(max)", "traps", "trapCyc")
	for _, o := range h.Top(k) {
		live := "yes"
		if !o.Live {
			live = "no"
		}
		t.Add(fmt.Sprintf("0x%x", o.Base), fmt.Sprint(o.Bytes), live,
			fmt.Sprint(o.Loads), fmt.Sprint(o.Stores), fmt.Sprint(o.Forwarded),
			fmt.Sprintf("%d(%d)", o.Hops, o.MaxHops),
			fmt.Sprint(o.Traps), fmt.Sprint(o.TrapCyc))
	}
	return t
}
