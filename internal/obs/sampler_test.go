package obs

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func sampleSeries() *Series {
	s := &Series{Every: 1000}
	s.Add(Sample{Phase: "build", Instructions: 1000, Cycles: 1500, DInstructions: 1000, DCycles: 1500,
		BusyShare: 0.5, LoadStallShare: 0.25, StoreStallShare: 0.1, InstStallShare: 0.15,
		L1MissRate: 0.02, FwdLoadRate: 0.001, HeapLiveBytes: 2048})
	s.Add(Sample{Phase: "sim", Instructions: 2000, Cycles: 3200, DInstructions: 1000, DCycles: 1700,
		BusyShare: 0.4, LoadStallShare: 0.4, StoreStallShare: 0.1, InstStallShare: 0.1,
		L1MissRate: 0.05, L2MissRate: 0.01, FwdLoadRate: 0.02, HeapLiveBytes: 4096})
	return s
}

func TestSeriesTable(t *testing.T) {
	s := sampleSeries()
	tab := s.Table()
	if len(tab.Rows) != s.Len() {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), s.Len())
	}
	str := tab.String()
	for _, want := range []string{"build", "sim", "0.500", "2.0", "4.0"} {
		if !strings.Contains(str, want) {
			t.Fatalf("table missing %q:\n%s", want, str)
		}
	}
}

// TestSampleZeroWidthIntervals: two snapshots at the same position must
// yield 0 rates, never NaN or Inf — the JSON layer would reject them
// and a live /samples consumer would choke.
func TestSampleZeroWidthIntervals(t *testing.T) {
	zero := Sample{Phase: "sim", Instructions: 500, Cycles: 700}
	if got := zero.IPC(); got != 0 {
		t.Fatalf("zero-width IPC = %v, want 0", got)
	}
	if got := zero.CPI(); got != 0 {
		t.Fatalf("zero-width CPI = %v, want 0", got)
	}
	// Half-degenerate intervals: one delta zero, the other not.
	instOnly := Sample{DInstructions: 100}
	if got := instOnly.IPC(); got != 0 {
		t.Fatalf("DCycles==0 IPC = %v, want 0 (not +Inf)", got)
	}
	if got := instOnly.CPI(); got != 0 {
		t.Fatalf("DInstructions>0, DCycles==0 CPI = %v, want 0", got)
	}
	cycOnly := Sample{DCycles: 100}
	if got := cycOnly.CPI(); got != 0 {
		t.Fatalf("DInstructions==0 CPI = %v, want 0 (not +Inf)", got)
	}
	if got := cycOnly.IPC(); got != 0 {
		t.Fatalf("DInstructions==0, DCycles>0 IPC = %v, want 0", got)
	}
	// Negative DCycles cannot happen in a monotone pipeline but must
	// still not divide.
	if got := (Sample{DInstructions: 10, DCycles: -5}).IPC(); got != 0 {
		t.Fatalf("negative-width IPC = %v, want 0", got)
	}
	// The normal case still computes.
	s := Sample{DInstructions: 1000, DCycles: 2000}
	if got := s.IPC(); got != 0.5 {
		t.Fatalf("IPC = %v, want 0.5", got)
	}
	if got := s.CPI(); got != 2 {
		t.Fatalf("CPI = %v, want 2", got)
	}
}

func TestSeriesOnAddHook(t *testing.T) {
	var seen []Sample
	s := &Series{Every: 100}
	s.OnAdd = func(sm Sample) { seen = append(seen, sm) }
	s.Add(Sample{Instructions: 100})
	s.Add(Sample{Instructions: 200})
	if len(seen) != 2 || seen[1].Instructions != 200 {
		t.Fatalf("OnAdd observed %+v", seen)
	}
	// The hook sees the sample after it landed in the series.
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSeries().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("series CSV does not parse: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d CSV records, want header + 2 rows", len(recs))
	}
	if recs[0][0] != "instr" || recs[1][2] != "build" || recs[2][2] != "sim" {
		t.Fatalf("CSV content wrong: %v", recs)
	}
}
