package obs

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func sampleSeries() *Series {
	s := &Series{Every: 1000}
	s.Add(Sample{Phase: "build", Instructions: 1000, Cycles: 1500, DInstructions: 1000, DCycles: 1500,
		BusyShare: 0.5, LoadStallShare: 0.25, StoreStallShare: 0.1, InstStallShare: 0.15,
		L1MissRate: 0.02, FwdLoadRate: 0.001, HeapLiveBytes: 2048})
	s.Add(Sample{Phase: "sim", Instructions: 2000, Cycles: 3200, DInstructions: 1000, DCycles: 1700,
		BusyShare: 0.4, LoadStallShare: 0.4, StoreStallShare: 0.1, InstStallShare: 0.1,
		L1MissRate: 0.05, L2MissRate: 0.01, FwdLoadRate: 0.02, HeapLiveBytes: 4096})
	return s
}

func TestSeriesTable(t *testing.T) {
	s := sampleSeries()
	tab := s.Table()
	if len(tab.Rows) != s.Len() {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), s.Len())
	}
	str := tab.String()
	for _, want := range []string{"build", "sim", "0.500", "2.0", "4.0"} {
		if !strings.Contains(str, want) {
			t.Fatalf("table missing %q:\n%s", want, str)
		}
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSeries().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("series CSV does not parse: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d CSV records, want header + 2 rows", len(recs))
	}
	if recs[0][0] != "instr" || recs[1][2] != "build" || recs[2][2] != "sim" {
		t.Fatalf("CSV content wrong: %v", recs)
	}
}
