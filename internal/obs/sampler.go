package obs

import (
	"fmt"
	"io"

	"memfwd/internal/report"
)

// Sample is one point of the run time-series: cumulative position
// (Instructions, Cycles) plus rates computed over the interval since
// the previous sample. Shares and rates are fractions in [0,1].
type Sample struct {
	Phase        string `json:",omitempty"` // innermost phase label at sample time
	Instructions uint64 // cumulative graduated instructions
	Cycles       int64  // cumulative cycles

	DInstructions uint64 // interval width in instructions
	DCycles       int64  // interval width in cycles

	// Graduation-slot partition of the interval (Figure 5's classes).
	BusyShare       float64
	LoadStallShare  float64
	StoreStallShare float64
	InstStallShare  float64

	// Demand miss rates over the interval (misses per demand access).
	L1MissRate float64
	L2MissRate float64

	// Forwarded-reference rates over the interval.
	FwdLoadRate  float64
	FwdStoreRate float64

	// Allocator occupancy at sample time, in bytes.
	HeapLiveBytes uint64
}

// IPC returns the interval's instructions per cycle, 0 for a
// zero-width interval (two snapshots at the same cycle), matching the
// figures-layer zero-denominator policy: report 0, never NaN/Inf.
func (sm Sample) IPC() float64 {
	if sm.DCycles <= 0 {
		return 0
	}
	return float64(sm.DInstructions) / float64(sm.DCycles)
}

// CPI returns the interval's cycles per instruction, 0 for a
// zero-width interval.
func (sm Sample) CPI() float64 {
	if sm.DInstructions == 0 {
		return 0
	}
	return float64(sm.DCycles) / float64(sm.DInstructions)
}

// Series is an ordered time-series of samples.
type Series struct {
	Every   uint64 // nominal sampling period in instructions
	Samples []Sample

	// OnAdd, when set, observes each sample as it lands. The live
	// telemetry plane uses this to publish fresh snapshots at sampler
	// cadence without adding another hook to the machine hot path.
	OnAdd func(Sample) `json:"-"`
}

// Add appends one sample.
func (s *Series) Add(sm Sample) {
	s.Samples = append(s.Samples, sm)
	if s.OnAdd != nil {
		s.OnAdd(sm)
	}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

func pct(v float64) string { return fmt.Sprintf("%.3f", v) }

// Table renders the series with one row per sample.
func (s *Series) Table() *report.Table {
	t := report.New(fmt.Sprintf("Time series (every %d instructions)", s.Every),
		"instr", "cycles", "phase", "busy", "ldStall", "stStall", "inStall",
		"l1miss", "l2miss", "fwdLd", "fwdSt", "heapKB")
	for _, sm := range s.Samples {
		t.Add(
			fmt.Sprint(sm.Instructions), fmt.Sprint(sm.Cycles), sm.Phase,
			pct(sm.BusyShare), pct(sm.LoadStallShare), pct(sm.StoreStallShare), pct(sm.InstStallShare),
			pct(sm.L1MissRate), pct(sm.L2MissRate),
			pct(sm.FwdLoadRate), pct(sm.FwdStoreRate),
			fmt.Sprintf("%.1f", float64(sm.HeapLiveBytes)/1024),
		)
	}
	return t
}

// WriteCSV emits the series as CSV via the report layer.
func (s *Series) WriteCSV(w io.Writer) error { return s.Table().WriteCSV(w) }
