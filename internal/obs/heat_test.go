package obs

import (
	"strings"
	"testing"
)

func TestNilHeatMapIsSafeAndFree(t *testing.T) {
	var h *HeatMap
	h.OnAlloc(0x100, 64)
	h.OnFree(0x100)
	h.RecordAccess(0x100, 0x100, false, 0)
	h.RecordTrap(0x100, 12)
	if h.Len() != 0 || h.Untracked() != 0 || h.Top(4) != nil || h.LongestChains(4) != nil {
		t.Fatal("nil heat map should report nothing")
	}
	if _, ok := h.Resolve(0x100); ok {
		t.Fatal("nil Resolve should miss")
	}
	if snap := h.Snapshot(4); snap.Objects != 0 || snap.Hottest != nil {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.RecordAccess(0x100, 0x100, true, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil RecordAccess allocates %v/op, want 0", allocs)
	}
}

func TestHeatMapAttributesAccesses(t *testing.T) {
	h := NewHeatMap(16, 0)
	h.OnAlloc(0x100, 24) // words 0x100, 0x108, 0x110
	h.OnAlloc(0x200, 8)

	h.RecordAccess(0x100, 0x100, false, 0) // load, direct
	h.RecordAccess(0x110, 0x110, true, 0)  // store to last word, same object
	h.RecordAccess(0x108, 0x900, false, 2) // forwarded load, 2 hops
	h.RecordAccess(0x200, 0x200, false, 0)
	h.RecordAccess(0x900, 0x900, false, 0) // untracked
	h.RecordTrap(0x100, 40)

	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	if h.Untracked() != 1 {
		t.Fatalf("Untracked = %d, want 1", h.Untracked())
	}
	top := h.Top(1)
	if len(top) != 1 || top[0].Base != 0x100 {
		t.Fatalf("Top(1) = %+v, want object 0x100", top)
	}
	o := top[0]
	if o.Loads != 2 || o.Stores != 1 || o.Forwarded != 1 || o.Hops != 2 || o.MaxHops != 2 {
		t.Fatalf("counters wrong: %+v", o)
	}
	if o.Traps != 1 || o.TrapCyc != 40 {
		t.Fatalf("trap accounting wrong: %+v", o)
	}
}

func TestHeatMapResolve(t *testing.T) {
	h := NewHeatMap(16, 0)
	h.OnAlloc(0x100, 24)
	if base, ok := h.Resolve(0x110); !ok || base != 0x100 {
		t.Fatalf("Resolve(0x110) = %#x,%v, want 0x100,true", base, ok)
	}
	if _, ok := h.Resolve(0x118); ok {
		t.Fatal("Resolve past the block should miss")
	}
	h.OnFree(0x100)
	if _, ok := h.Resolve(0x100); ok {
		t.Fatal("Resolve after free should miss")
	}
}

// TestHeatMapFinalFallback: an access whose initial address resolves to
// nothing but whose final (post-forwarding) address is tracked lands on
// the target object — heat follows relocated data whose source block
// was never tracked.
func TestHeatMapFinalFallback(t *testing.T) {
	h := NewHeatMap(16, 0)
	h.OnAlloc(0x800, 16) // relocation target block
	h.RecordAccess(0x100, 0x808, false, 1)
	top := h.Top(1)
	if len(top) != 1 || top[0].Base != 0x800 || top[0].Loads != 1 {
		t.Fatalf("final-address fallback missed: %+v", top)
	}
	if h.Untracked() != 0 {
		t.Fatalf("Untracked = %d, want 0", h.Untracked())
	}
}

func TestHeatMapFreeRetainsProfileUntilReuse(t *testing.T) {
	h := NewHeatMap(16, 0)
	h.OnAlloc(0x100, 8)
	h.RecordAccess(0x100, 0x100, false, 0)
	h.OnFree(0x100)
	// Profile retained (dead objects are still Top candidates)...
	top := h.Top(1)
	if len(top) != 1 || top[0].Live || top[0].Loads != 1 {
		t.Fatalf("freed object profile lost: %+v", top)
	}
	// ...but its words no longer attribute.
	h.RecordAccess(0x100, 0x100, false, 0)
	if h.Untracked() != 1 {
		t.Fatalf("access to freed block tracked: Untracked = %d", h.Untracked())
	}
	// Address reuse replaces the dead entry.
	h.OnAlloc(0x100, 8)
	top = h.Top(1)
	if len(top) != 1 || !top[0].Live || top[0].Loads != 0 {
		t.Fatalf("reused base kept stale profile: %+v", top)
	}
}

func TestHeatMapEvictsColdestPreferringDead(t *testing.T) {
	h := NewHeatMap(2, 0)
	h.OnAlloc(0x100, 8)
	h.OnAlloc(0x200, 8)
	// 0x100 is hot, 0x200 cold but both live; a dead-but-hot third...
	for i := 0; i < 10; i++ {
		h.RecordAccess(0x100, 0x100, false, 0)
	}
	h.RecordAccess(0x200, 0x200, false, 0)
	h.OnFree(0x100)

	// At capacity: the dead 0x100 goes first despite being hottest.
	h.OnAlloc(0x300, 8)
	if _, ok := h.objs[0x100]; ok {
		t.Fatal("dead entry should be evicted before live ones")
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	// All live now: the coldest (0x300, zero heat) goes.
	h.RecordAccess(0x200, 0x200, false, 0)
	h.OnAlloc(0x400, 8)
	if _, ok := h.objs[0x300]; ok {
		t.Fatal("coldest live entry should be evicted")
	}
	snap := h.Snapshot(0)
	if snap.Evicted != 2 {
		t.Fatalf("Evicted = %d, want 2", snap.Evicted)
	}
}

func TestHeatMapEpochDecay(t *testing.T) {
	h := NewHeatMap(16, 4) // epoch every 4 recorded accesses
	h.OnAlloc(0x100, 8)
	h.OnAlloc(0x200, 8)
	h.RecordAccess(0x200, 0x200, false, 0) // one access on 0x200
	for i := 0; i < 3; i++ {               // three more trip the epoch
		h.RecordAccess(0x100, 0x100, true, 1)
	}
	snap := h.Snapshot(4)
	if snap.Epochs != 1 {
		t.Fatalf("Epochs = %d, want 1", snap.Epochs)
	}
	byBase := map[uint64]HeatObject{}
	for _, o := range snap.Hottest {
		byBase[o.Base] = o
	}
	// 3 stores and 3 hops halve to 1; 1 load halves to 0.
	if o := byBase[0x100]; o.Stores != 1 || o.Hops != 1 || o.Forwarded != 1 {
		t.Fatalf("0x100 after decay: %+v", o)
	}
	if o := byBase[0x200]; o.Loads != 0 {
		t.Fatalf("0x200 after decay: %+v", o)
	}
	// MaxHops is a high-water mark: it survives decay.
	if o := byBase[0x100]; o.MaxHops != 1 {
		t.Fatalf("MaxHops decayed: %+v", o)
	}
}

func TestHeatMapDecayDropsColdDead(t *testing.T) {
	h := NewHeatMap(16, 2)
	h.OnAlloc(0x100, 8)
	h.RecordAccess(0x100, 0x100, false, 0)
	h.OnFree(0x100)
	// One more access trips the epoch; 1 load halves to 0 and the dead
	// zero-heat entry is dropped.
	h.OnAlloc(0x200, 8)
	h.RecordAccess(0x200, 0x200, false, 0)
	if _, ok := h.objs[0x100]; ok {
		t.Fatal("cold dead entry should be dropped at epoch")
	}
}

func TestHeatMapLongestChains(t *testing.T) {
	h := NewHeatMap(16, 0)
	h.OnAlloc(0x100, 8)
	h.OnAlloc(0x200, 8)
	h.OnAlloc(0x300, 8)
	h.RecordAccess(0x100, 0x100, false, 3)
	h.RecordAccess(0x200, 0x200, false, 1)
	h.RecordAccess(0x300, 0x300, false, 0) // no hops: not a chain candidate
	h.OnFree(0x100)                        // dead: excluded
	chains := h.LongestChains(4)
	if len(chains) != 1 || chains[0].Base != 0x200 {
		t.Fatalf("LongestChains = %+v, want only live 0x200", chains)
	}
}

func TestHeatMapTopDeterministicTiebreak(t *testing.T) {
	h := NewHeatMap(16, 0)
	for _, base := range []uint64{0x300, 0x100, 0x200} {
		h.OnAlloc(base, 8)
		h.RecordAccess(base, base, false, 0) // equal heat everywhere
	}
	top := h.Top(3)
	if top[0].Base != 0x100 || top[1].Base != 0x200 || top[2].Base != 0x300 {
		t.Fatalf("equal-heat tiebreak not base-ascending: %+v", top)
	}
}

func TestHeatMapReportAndMetrics(t *testing.T) {
	h := NewHeatMap(16, 0)
	h.OnAlloc(0x1000, 32)
	h.RecordAccess(0x1000, 0x1000, false, 0)
	h.RecordAccess(0x1008, 0x1008, true, 2)
	out := h.Report(4).String()
	for _, want := range []string{"0x1000", "32", "yes", "2(2)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	r := NewRegistry()
	h.RegisterMetrics(r)
	vals := map[string]float64{}
	for _, mv := range r.Snapshot() {
		vals[mv.Name] = mv.Value
	}
	if vals["heat.objects"] != 1 || vals["heat.untracked"] != 0 {
		t.Fatalf("metrics wrong: %v", vals)
	}
}
