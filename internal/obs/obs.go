// Package obs is the simulator's unified observability layer. It has
// three pillars, all strictly opt-in so that a machine with no tracer,
// registry, or sampler attached behaves (and times) exactly as before:
//
//   - structured event tracing: a bounded ring-buffer Tracer with
//     pluggable sinks (in-memory for tests, NDJSON for offline
//     analysis, Chrome/Perfetto trace_event JSON for visual timelines)
//     records typed events with cycle timestamps. A nil *Tracer is a
//     valid no-op receiver, so hot paths pay only a nil check and zero
//     allocations when tracing is disabled.
//
//   - a metrics registry: named counters, gauges, and histograms, plus
//     GaugeFunc views that expose the existing Stats struct fields of
//     every subsystem without touching their hot-path increments. The
//     Stats structs remain the source of truth (and keep all figure
//     outputs byte-identical); the registry is a uniform read-out.
//
//   - time-series sampling: Sample/Series are the record types the
//     machine's periodic sampler fills from consecutive non-destructive
//     snapshots, turning one run into a timeline of slot-partition
//     shares, miss rates, forwarding rates, and heap occupancy.
package obs

// Kind identifies the type of one trace event.
type Kind uint8

const (
	KAlloc Kind = iota
	KFree
	KRelocate
	KForwardHop
	KTrap
	KCacheMiss
	KDepViolation
	KPhaseBegin
	KPhaseEnd
	KSpanBegin
	KSpanEnd
	nKinds
)

// NumKinds is the number of distinct event kinds.
const NumKinds = int(nKinds)

func (k Kind) String() string {
	switch k {
	case KAlloc:
		return "alloc"
	case KFree:
		return "free"
	case KRelocate:
		return "relocate"
	case KForwardHop:
		return "forwardHop"
	case KTrap:
		return "trap"
	case KCacheMiss:
		return "cacheMiss"
	case KDepViolation:
		return "depViolation"
	case KPhaseBegin:
		return "phaseBegin"
	case KPhaseEnd:
		return "phaseEnd"
	case KSpanBegin:
		return "spanBegin"
	case KSpanEnd:
		return "spanEnd"
	default:
		return "unknown"
	}
}

// Event is one trace record. The struct is flat and self-contained so
// emitting one never allocates; fields beyond Cycle and Kind are
// interpreted per kind:
//
//	KAlloc        Addr=block base, N=bytes
//	KFree         Addr=block base
//	KRelocate     Addr=source, Addr2=target, N=words moved
//	KForwardHop   Addr=initial, Addr2=final, N=hops, Class=ref kind
//	KTrap         Addr=initial, Addr2=final, N=hops, Class=ref kind
//	KCacheMiss    Addr=line, Level=cache level, Class=access kind,
//	              Flag=partial (combined with an outstanding miss)
//	KDepViolation Addr=initial, Addr2=final of the violating load
//	KPhaseBegin   Label=phase name
//	KPhaseEnd     Label=phase name
//	KSpanBegin    Label=span name, Addr/Addr2/N per span (duration open)
//	KSpanEnd      Label=span name (duration close, LIFO-nested with Begin)
type Event struct {
	Cycle int64
	Kind  Kind
	Level uint8 // cache level (1 = L1, 2 = L2) for KCacheMiss
	Class uint8 // access kind: 0 load, 1 store, 2 prefetch
	Flag  bool  // KCacheMiss: partial (vs full) miss
	Addr  uint64
	Addr2 uint64
	N     uint64
	Label string
}

// ClassString renders the Class field for the kinds that use it.
func (e Event) ClassString() string {
	switch e.Class {
	case 0:
		return "load"
	case 1:
		return "store"
	default:
		return "prefetch"
	}
}
