package obs

import (
	"sync"
	"testing"
)

func TestBroadcasterDeliversToAllSubscribers(t *testing.T) {
	b := NewBroadcaster()
	s1 := b.Subscribe(4)
	s2 := b.Subscribe(4)
	if err := b.WriteEvents([]Event{{Kind: KAlloc, Addr: 0x10}, {Kind: KFree, Addr: 0x10}}); err != nil {
		t.Fatal(err)
	}
	for i, s := range []*Subscriber{s1, s2} {
		batch := <-s.C
		if len(batch) != 2 || batch[0].Kind != KAlloc || batch[1].Kind != KFree {
			t.Fatalf("subscriber %d got %+v", i, batch)
		}
	}
	if ev, dr, subs := b.Stats(); ev != 2 || dr != 0 || subs != 2 {
		t.Fatalf("Stats = %d/%d/%d, want 2/0/2", ev, dr, subs)
	}
}

// TestBroadcasterBatchSurvivesTracerReuse: the tracer zeroes its buffer
// after flushing, so the broadcaster must have copied the batch.
func TestBroadcasterBatchSurvivesTracerReuse(t *testing.T) {
	b := NewBroadcaster()
	s := b.Subscribe(4)
	tr := NewTracer(NoClose(b), 2)
	tr.Emit(Event{Cycle: 1, Kind: KAlloc})
	tr.Emit(Event{Cycle: 2, Kind: KAlloc}) // fills buffer: flush + zero
	tr.Emit(Event{Cycle: 3, Kind: KTrap})  // overwrites the tracer buffer
	batch := <-s.C
	if len(batch) != 2 || batch[0].Cycle != 1 || batch[1].Cycle != 2 {
		t.Fatalf("batch aliases the zeroed tracer buffer: %+v", batch)
	}
}

func TestBroadcasterDropsWhenSubscriberFull(t *testing.T) {
	b := NewBroadcaster()
	slow := b.Subscribe(1)
	fast := b.Subscribe(8)
	for i := 0; i < 4; i++ {
		if err := b.WriteEvents([]Event{{Cycle: int64(i), Kind: KTrap}}); err != nil {
			t.Fatal(err)
		}
	}
	// slow's queue held 1 batch; 3 batches of 1 event were dropped.
	if d := slow.Dropped(); d != 3 {
		t.Fatalf("slow.Dropped = %d, want 3", d)
	}
	if d := fast.Dropped(); d != 0 {
		t.Fatalf("fast.Dropped = %d, want 0", d)
	}
	if ev, dr, _ := b.Stats(); ev != 4 || dr != 3 {
		t.Fatalf("Stats = %d events / %d dropped, want 4/3", ev, dr)
	}
	// The producer never blocked and the retained batch is the oldest.
	if batch := <-slow.C; batch[0].Cycle != 0 {
		t.Fatalf("retained batch wrong: %+v", batch)
	}
}

func TestBroadcasterUnsubscribeIdempotent(t *testing.T) {
	b := NewBroadcaster()
	s := b.Subscribe(0)
	s.Unsubscribe()
	s.Unsubscribe() // second call must not double-close
	if _, ok := <-s.C; ok {
		t.Fatal("channel should be closed after Unsubscribe")
	}
	if _, _, subs := b.Stats(); subs != 0 {
		t.Fatalf("subscriber still attached: %d", subs)
	}
	// Writes after unsubscribe go nowhere but still count.
	if err := b.WriteEvents([]Event{{Kind: KAlloc}}); err != nil {
		t.Fatal(err)
	}
	if ev, dr, _ := b.Stats(); ev != 1 || dr != 0 {
		t.Fatalf("Stats = %d/%d, want 1/0", ev, dr)
	}
}

func TestBroadcasterCloseIdempotentAndFinal(t *testing.T) {
	b := NewBroadcaster()
	s := b.Subscribe(4)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-s.C; ok {
		t.Fatal("Close should close subscriber channels")
	}
	// Late subscribe gets an already-closed channel; late writes no-op.
	late := b.Subscribe(4)
	if _, ok := <-late.C; ok {
		t.Fatal("subscribe on closed hub should return a closed channel")
	}
	if err := b.WriteEvents([]Event{{Kind: KAlloc}}); err != nil {
		t.Fatal(err)
	}
	if ev, _, _ := b.Stats(); ev != 0 {
		t.Fatalf("closed hub accepted events: %d", ev)
	}
	late.Unsubscribe() // must not panic on a never-attached subscriber
}

func TestNoCloseShieldsSharedSink(t *testing.T) {
	b := NewBroadcaster()
	s := b.Subscribe(4)
	tr := NewTracer(NoClose(b), 0)
	tr.Emit(Event{Kind: KRelocate})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// The tracer's Close flushed but did NOT close the hub.
	if batch := <-s.C; batch[0].Kind != KRelocate {
		t.Fatalf("flush-on-close lost: %+v", batch)
	}
	if err := b.WriteEvents([]Event{{Kind: KTrap}}); err != nil {
		t.Fatal(err)
	}
	if batch := <-s.C; batch[0].Kind != KTrap {
		t.Fatal("hub should still be open after wrapped Close")
	}
}

// TestBroadcasterConcurrency exercises the producer / subscriber /
// lifecycle paths concurrently; run with -race this is the regression
// net for the /events hub.
func TestBroadcasterConcurrency(t *testing.T) {
	b := NewBroadcaster()
	const producers, churners = 4, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = b.WriteEvents([]Event{{Cycle: int64(i), Kind: KTrap, Addr: uint64(p)}})
			}
		}(p)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := b.Subscribe(2)
				// Drain a little, then detach; leftover batches are
				// garbage-collected with the channel.
				select {
				case <-s.C:
				default:
				}
				_ = s.Dropped()
				s.Unsubscribe()
			}
		}()
	}
	wg.Wait()
	close(stop)
	_ = stop
	ev, _, subs := b.Stats()
	if ev != producers*500 {
		t.Fatalf("accepted %d events, want %d", ev, producers*500)
	}
	if subs != 0 {
		t.Fatalf("%d subscribers leaked", subs)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBroadcasterSubscribeCloseRace is the ISSUE 7 regression net for
// Subscribe racing Close (memfwd-serve hits this on every session
// teardown): whichever order the mutex serializes them into, Subscribe
// must return a usable subscriber — never panic — and every consumer
// loop must terminate because its channel is (eventually) closed.
// Under -race this also proves the lifecycle paths are data-race free.
func TestBroadcasterSubscribeCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		b := NewBroadcaster()
		var wg sync.WaitGroup
		start := make(chan struct{})

		for s := 0; s < 4; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				sub := b.Subscribe(2)
				// Must terminate whether we attached before or after
				// Close; queued batches drain first, then the close.
				for range sub.C {
				}
				sub.Unsubscribe() // no-op on a detached subscriber
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_ = b.WriteEvents([]Event{{Kind: KAlloc}})
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := b.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()

		close(start)
		wg.Wait()
		if s := b.Subscribe(1); s == nil {
			t.Fatal("Subscribe on closed broadcaster returned nil")
		} else if _, ok := <-s.C; ok {
			t.Fatal("subscriber attached after Close received an event")
		}
	}
}
