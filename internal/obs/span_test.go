package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func committedSpan(src, tgt uint64, copyCyc, verifyCyc, plantCyc int64) RelocationSpan {
	return RelocationSpan{
		Src: src, Tgt: tgt, Words: 4,
		ChainBefore: 0, ChainAfter: 1,
		Begin: 100, CopyCycles: copyCyc, VerifyCycles: verifyCyc, PlantCycles: plantCyc,
		TotalCycles: copyCyc + verifyCyc + plantCyc,
		Outcome:     RelocCommitted,
	}
}

func TestNilSpanTableIsSafeAndFree(t *testing.T) {
	var st *SpanTable
	if id := st.Record(committedSpan(0x10, 0x20, 1, 1, 1)); id != 0 {
		t.Fatalf("nil Record returned id %d, want 0", id)
	}
	if st.Count() != 0 || st.Spans() != nil {
		t.Fatal("nil table should report nothing")
	}
	c, a, torn := st.Outcomes()
	if c != 0 || a != 0 || torn != 0 {
		t.Fatal("nil table outcomes should be zero")
	}
	if snap := st.Snapshot(10); snap.Total != 0 || snap.Recent != nil {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	if st.Report() == nil {
		t.Fatal("nil Report should still render an empty table")
	}
}

func TestSpanTableOutcomesAndIDs(t *testing.T) {
	st := NewSpanTable(8)
	id1 := st.Record(committedSpan(0x10, 0x20, 10, 2, 4))
	id2 := st.Record(RelocationSpan{Src: 0x30, Outcome: RelocAborted,
		ChainAfter: -1, CopyCycles: -1, VerifyCycles: -1, PlantCycles: -1,
		Err: "chain cap"})
	id3 := st.Record(RelocationSpan{Src: 0x40, Outcome: RelocTorn,
		ChainAfter: -1, CopyCycles: 12, VerifyCycles: 3, PlantCycles: -1,
		Err: "copy verify mismatch", Faults: []string{"flip@relocate.copy-write"}})
	if id1 != 1 || id2 != 2 || id3 != 3 {
		t.Fatalf("IDs = %d,%d,%d, want 1,2,3", id1, id2, id3)
	}
	c, a, torn := st.Outcomes()
	if c != 1 || a != 1 || torn != 1 {
		t.Fatalf("outcomes = %d/%d/%d, want 1/1/1", c, a, torn)
	}
	spans := st.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	if spans[1].Err != "chain cap" || spans[2].Faults[0] != "flip@relocate.copy-write" {
		t.Fatalf("annotations lost: %+v", spans[1:])
	}
}

func TestSpanTableSkipsUnreachedPhases(t *testing.T) {
	st := NewSpanTable(8)
	// One committed span reaches all phases; one abort reaches none.
	st.Record(committedSpan(0x10, 0x20, 10, 2, 4))
	st.Record(RelocationSpan{Outcome: RelocAborted,
		CopyCycles: -1, VerifyCycles: -1, PlantCycles: -1, TotalCycles: 1})
	snap := st.Snapshot(0)
	byPhase := map[string]PhaseSummary{}
	for _, p := range snap.Phases {
		byPhase[p.Phase] = p
	}
	if byPhase["copy"].Count != 1 || byPhase["verify"].Count != 1 || byPhase["plant"].Count != 1 {
		t.Fatalf("-1 phases leaked into histograms: %+v", snap.Phases)
	}
	if byPhase["total"].Count != 2 {
		t.Fatalf("total count = %d, want 2 (every span)", byPhase["total"].Count)
	}
	if byPhase["copy"].Max != 10 || byPhase["plant"].Max != 4 {
		t.Fatalf("phase maxima wrong: %+v", byPhase)
	}
}

func TestSpanTableRingWrap(t *testing.T) {
	st := NewSpanTable(4)
	for i := 0; i < 10; i++ {
		st.Record(committedSpan(uint64(i), uint64(i)+0x100, 1, 1, 1))
	}
	if st.Count() != 10 {
		t.Fatalf("Count = %d, want 10", st.Count())
	}
	spans := st.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := uint64(7 + i); s.ID != want {
			t.Fatalf("spans[%d].ID = %d, want %d (most recent window, in order)", i, s.ID, want)
		}
	}
	// Aggregates cover all 10, not just the window.
	c, _, _ := st.Outcomes()
	if c != 10 {
		t.Fatalf("committed = %d, want 10", c)
	}
	snap := st.Snapshot(2)
	if len(snap.Recent) != 2 || snap.Recent[1].ID != 10 {
		t.Fatalf("Snapshot(2) recent wrong: %+v", snap.Recent)
	}
}

func TestSpanTableQuantiles(t *testing.T) {
	st := NewSpanTable(0)
	// 100 spans with copy cost i+1: p50 ~ 50, p95 ~ 95 within a
	// histogram bucket's interpolation error.
	for i := 0; i < 100; i++ {
		st.Record(committedSpan(0x10, 0x20, int64(i+1), 0, 1))
	}
	snap := st.Snapshot(0)
	var copyPh PhaseSummary
	for _, p := range snap.Phases {
		if p.Phase == "copy" {
			copyPh = p
		}
	}
	if copyPh.P50 < 16 || copyPh.P50 > 64 {
		t.Fatalf("copy p50 = %v, want within bucket (16,64]", copyPh.P50)
	}
	if copyPh.P95 < 64 || copyPh.P95 > 100 {
		t.Fatalf("copy p95 = %v, want in (64,100]", copyPh.P95)
	}
	if copyPh.Max != 100 {
		t.Fatalf("copy max = %v, want 100", copyPh.Max)
	}
}

func TestSpanTableReport(t *testing.T) {
	st := NewSpanTable(0)
	st.Record(committedSpan(0x10, 0x20, 10, 2, 4))
	st.Record(RelocationSpan{Outcome: RelocTorn, CopyCycles: 5, VerifyCycles: -1, PlantCycles: -1})
	out := st.Report().String()
	for _, want := range []string{"copy", "verify", "plant", "total", "1 committed", "0 aborted", "1 torn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSpanTableRegisterMetrics(t *testing.T) {
	st := NewSpanTable(0)
	r := NewRegistry()
	st.RegisterMetrics(r)
	st.Record(committedSpan(0x10, 0x20, 10, 2, 4))
	st.Record(RelocationSpan{Outcome: RelocAborted, CopyCycles: -1, VerifyCycles: -1, PlantCycles: -1})
	vals := map[string]float64{}
	for _, mv := range r.Snapshot() {
		vals[mv.Name] = mv.Value
	}
	if vals["reloc.spans"] != 2 || vals["reloc.committed"] != 1 || vals["reloc.aborted"] != 1 || vals["reloc.torn"] != 0 {
		t.Fatalf("metrics wrong: %v", vals)
	}
}

// TestSpanEmitNestedDurationEvents checks the trace-side rendering: one
// outer "relocate" slice enclosing per-phase slices, with unreached
// phases omitted, and the whole thing valid Perfetto trace_event JSON.
func TestSpanEmitNestedDurationEvents(t *testing.T) {
	st := NewSpanTable(0)
	ring := NewRing(64)
	st.Tracer = ring
	st.Record(committedSpan(0x10, 0x20, 10, 2, 4))

	evs := ring.Events()
	want := []struct {
		kind  Kind
		label string
		cycle int64
	}{
		{KSpanBegin, SpanRelocate, 100},
		{KSpanBegin, SpanCopy, 100},
		{KSpanEnd, SpanCopy, 110},
		{KSpanBegin, SpanVerify, 110},
		{KSpanEnd, SpanVerify, 112},
		{KSpanBegin, SpanPlant, 112},
		{KSpanEnd, SpanPlant, 116},
		{KSpanEnd, SpanRelocate, 116},
	}
	if len(evs) != len(want) {
		t.Fatalf("emitted %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].Label != w.label || evs[i].Cycle != w.cycle {
			t.Fatalf("event %d = {%v %q %d}, want {%v %q %d}",
				i, evs[i].Kind, evs[i].Label, evs[i].Cycle, w.kind, w.label, w.cycle)
		}
	}
	if evs[0].Addr != 0x10 || evs[0].Addr2 != 0x20 || evs[0].N != 4 {
		t.Fatalf("outer begin missing src/tgt/words: %+v", evs[0])
	}
}

func TestSpanEmitSkipsUnreachedPhases(t *testing.T) {
	st := NewSpanTable(0)
	ring := NewRing(64)
	st.Tracer = ring
	st.Record(RelocationSpan{Begin: 50, CopyCycles: 7, VerifyCycles: -1, PlantCycles: -1,
		TotalCycles: 9, Outcome: RelocTorn})
	evs := ring.Events()
	// relocate B, copy B, copy E, relocate E — verify/plant omitted.
	if len(evs) != 4 {
		t.Fatalf("emitted %d events, want 4: %+v", len(evs), evs)
	}
	if evs[1].Label != SpanCopy || evs[3].Label != SpanRelocate || evs[3].Cycle != 59 {
		t.Fatalf("wrong slice structure: %+v", evs)
	}
}

// TestPerfettoSpanDurationsValidJSON runs span events through the
// Perfetto sink and checks the output is a valid, balanced trace_event
// document with matched B/E pairs.
func TestPerfettoSpanDurationsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewPerfettoSink(&buf), 3) // force mid-span flushes
	st := NewSpanTable(0)
	st.Tracer = tr
	st.Record(committedSpan(0x1000, 0x2000, 10, 2, 4))
	st.Record(RelocationSpan{Begin: 200, CopyCycles: 3, VerifyCycles: -1, PlantCycles: -1,
		TotalCycles: 3, Outcome: RelocTorn})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("span trace not valid trace_event JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 12 {
		t.Fatalf("got %d trace events, want 12", len(evs))
	}
	depth := 0
	open := map[string]int{}
	for i, ev := range evs {
		switch ev["ph"] {
		case "B":
			depth++
			open[ev["name"].(string)]++
		case "E":
			depth--
			open[ev["name"].(string)]--
		default:
			t.Fatalf("event %d is not a duration event: %v", i, ev)
		}
		if depth < 0 {
			t.Fatalf("unbalanced E at event %d: %v", i, evs)
		}
	}
	if depth != 0 {
		t.Fatalf("unclosed slices: depth %d at end", depth)
	}
	for name, n := range open {
		if n != 0 {
			t.Fatalf("slice %q opened %+d more times than closed", name, n)
		}
	}
	if args, ok := evs[0]["args"].(map[string]any); !ok ||
		args["src"] != "0x1000" || args["tgt"] != "0x2000" || args["words"] != float64(4) {
		t.Fatalf("outer relocate args wrong: %v", evs[0])
	}
}
