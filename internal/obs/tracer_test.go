package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KAlloc, Addr: 1, N: 8})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Emitted() != 0 || tr.Events() != nil || tr.Enabled(KAlloc) {
		t.Fatal("nil tracer should report nothing")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Cycle: 1, Kind: KCacheMiss, Level: 1, Addr: 0x40})
	})
	if allocs != 0 {
		t.Fatalf("nil tracer Emit allocates %v/op, want 0", allocs)
	}
}

func TestRingRetainsMostRecent(t *testing.T) {
	tr := NewRing(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: int64(i), Kind: KAlloc})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Cycle != want {
			t.Fatalf("evs[%d].Cycle = %d, want %d", i, ev.Cycle, want)
		}
	}
	if tr.Emitted() != 10 {
		t.Fatalf("Emitted = %d, want 10", tr.Emitted())
	}
}

// TestRingWraparoundOrdering pins the read-back order across the whole
// wraparound spectrum: below capacity, exactly at capacity, one past,
// and after multiple full revolutions the window must always be the
// most recent len(buf) events in emission order.
func TestRingWraparoundOrdering(t *testing.T) {
	const cap = 4
	for _, total := range []int{0, 3, cap, cap + 1, 2 * cap, 2*cap + 3, 10 * cap} {
		tr := NewRing(cap)
		for i := 0; i < total; i++ {
			tr.Emit(Event{Cycle: int64(i), Kind: KAlloc, Addr: uint64(i)})
		}
		evs := tr.Events()
		wantLen := total
		if wantLen > cap {
			wantLen = cap
		}
		if len(evs) != wantLen {
			t.Fatalf("total=%d: kept %d events, want %d", total, len(evs), wantLen)
		}
		first := total - wantLen
		for i, ev := range evs {
			if want := int64(first + i); ev.Cycle != want || ev.Addr != uint64(want) {
				t.Fatalf("total=%d: evs[%d].Cycle = %d, want %d (window must be ordered)",
					total, i, ev.Cycle, want)
			}
		}
		if tr.Emitted() != uint64(total) {
			t.Fatalf("total=%d: Emitted = %d", total, tr.Emitted())
		}
	}
}

func TestSinkFlushOnFullAndClose(t *testing.T) {
	sink := &MemorySink{}
	tr := NewTracer(sink, 3)
	for i := 0; i < 7; i++ {
		tr.Emit(Event{Cycle: int64(i), Kind: KFree})
	}
	if len(sink.Events) != 6 {
		t.Fatalf("auto-flushed %d events, want 6 (two full buffers)", len(sink.Events))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Events) != 7 {
		t.Fatalf("after Close sink has %d events, want 7", len(sink.Events))
	}
	for i, ev := range sink.Events {
		if ev.Cycle != int64(i) {
			t.Fatalf("event %d out of order (cycle %d)", i, ev.Cycle)
		}
	}
}

func TestEnableOnlyFilters(t *testing.T) {
	tr := NewRing(16)
	tr.EnableOnly(KTrap, KRelocate)
	tr.Emit(Event{Kind: KAlloc})
	tr.Emit(Event{Kind: KTrap})
	tr.Emit(Event{Kind: KCacheMiss})
	tr.Emit(Event{Kind: KRelocate})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != KTrap || evs[1].Kind != KRelocate {
		t.Fatalf("filter kept %v", evs)
	}
	if tr.Enabled(KAlloc) || !tr.Enabled(KTrap) {
		t.Fatal("Enabled disagrees with filter")
	}
}

type failSink struct{ n int }

func (s *failSink) WriteEvents(evs []Event) error { s.n += len(evs); return errors.New("disk full") }
func (s *failSink) Close() error                  { return nil }

func TestSinkErrorIsSticky(t *testing.T) {
	tr := NewTracer(&failSink{}, 2)
	tr.Emit(Event{Kind: KAlloc})
	tr.Emit(Event{Kind: KAlloc})
	if tr.Err() == nil {
		t.Fatal("expected sink error")
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close should report the first sink error")
	}
}

func TestNDJSONSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	tr := NewTracer(sink, 0)
	tr.Emit(Event{Cycle: 5, Kind: KAlloc, Addr: 0x1000_0000, N: 40})
	tr.Emit(Event{Cycle: 9, Kind: KCacheMiss, Level: 2, Class: 1, Flag: true, Addr: 0x80})
	tr.Emit(Event{Cycle: 12, Kind: KPhaseBegin, Label: "build"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var first struct {
		Cycle int64  `json:"cycle"`
		Kind  string `json:"kind"`
		Addr  string `json:"addr"`
		N     uint64 `json:"n"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if first.Kind != "alloc" || first.Addr != "0x10000000" || first.N != 40 || first.Cycle != 5 {
		t.Fatalf("bad first line: %+v", first)
	}
	var miss map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &miss); err != nil {
		t.Fatal(err)
	}
	if miss["kind"] != "cacheMiss" || miss["class"] != "store" || miss["level"] != float64(2) || miss["partial"] != true {
		t.Fatalf("bad miss line: %v", miss)
	}
	var phase map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &phase); err != nil {
		t.Fatal(err)
	}
	if phase["label"] != "build" {
		t.Fatalf("bad phase line: %v", phase)
	}
}

func TestPerfettoSinkValidArray(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewPerfettoSink(&buf), 2) // small buffer: multiple flushes
	tr.Emit(Event{Cycle: 1, Kind: KPhaseBegin, Label: "build"})
	tr.Emit(Event{Cycle: 3, Kind: KForwardHop, Class: 0, Addr: 0x10, Addr2: 0x20, N: 2})
	tr.Emit(Event{Cycle: 4, Kind: KCacheMiss, Level: 1, Addr: 0x40})
	tr.Emit(Event{Cycle: 9, Kind: KPhaseEnd, Label: "build"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("not a valid trace_event JSON array: %v\n%s", err, buf.String())
	}
	if len(evs) != 4 {
		t.Fatalf("got %d trace events, want 4", len(evs))
	}
	if evs[0]["ph"] != "B" || evs[0]["name"] != "build" || evs[3]["ph"] != "E" {
		t.Fatalf("phase events wrong: %v", evs)
	}
	if evs[1]["ph"] != "i" || evs[1]["name"] != "forwardHop" {
		t.Fatalf("instant event wrong: %v", evs[1])
	}
	args, ok := evs[1]["args"].(map[string]any)
	if !ok || args["n"] != float64(2) || args["class"] != "load" {
		t.Fatalf("forwardHop args wrong: %v", evs[1])
	}
}

func TestPerfettoSinkEmptyTraceStillValid(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewPerfettoSink(&buf), 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("empty trace not valid JSON: %v (%q)", err, buf.String())
	}
	if len(evs) != 0 {
		t.Fatalf("want empty array, got %v", evs)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := &MemorySink{}, &MemorySink{}
	tr := NewTracer(MultiSink(a, b), 0)
	tr.Emit(Event{Kind: KTrap})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatalf("fan-out missed a sink: %d/%d", len(a.Events), len(b.Events))
	}
}
