// Package pprofutil wraps runtime/pprof for the command-line tools: a
// CPU profile that brackets the run and a heap profile written at exit.
// The simulator's hot path is a per-access interpreter loop, so these
// two profiles are the primary tools for keeping it allocation-free
// (see EXPERIMENTS.md, "Hot-path performance").
package pprofutil

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns a stop
// function. An empty path is a no-op (the returned stop still must be
// safe to call).
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes a heap profile to path after a full GC, so the
// profile reflects live memory rather than collectable garbage. An
// empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
