package pprofutil

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartCPUEmptyPath: an empty path is a documented no-op whose
// stop function must still be safe to call (twice — callers defer it
// unconditionally).
func TestStartCPUEmptyPath(t *testing.T) {
	stop, err := StartCPU("")
	if err != nil {
		t.Fatalf("StartCPU(\"\") = %v", err)
	}
	if stop == nil {
		t.Fatal("StartCPU(\"\") returned a nil stop function")
	}
	stop()
	stop()
}

// TestStartCPURoundTrip profiles a short busy loop and checks a
// non-empty pprof file lands at the requested path.
func TestStartCPURoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPU(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record; the
	// file is valid even if no samples land.
	x := 1
	for i := 0; i < 1<<16; i++ {
		x = x*31 + i
	}
	_ = x
	stop()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("CPU profile file is empty")
	}
}

// TestStartCPUErrors covers both failure paths: an uncreatable file,
// and a second profiler started while one is running (runtime/pprof
// rejects it; the file must not be leaked half-open).
func TestStartCPUErrors(t *testing.T) {
	if _, err := StartCPU(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")); err == nil {
		t.Error("StartCPU into a missing directory succeeded")
	}

	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPU(path)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, err := StartCPU(filepath.Join(t.TempDir(), "second.pprof")); err == nil {
		t.Error("nested StartCPU succeeded; runtime/pprof should reject it")
	}
}

// TestWriteHeap covers the no-op, success, and error paths.
func TestWriteHeap(t *testing.T) {
	if err := WriteHeap(""); err != nil {
		t.Errorf("WriteHeap(\"\") = %v", err)
	}

	path := filepath.Join(t.TempDir(), "heap.pprof")
	if err := WriteHeap(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("heap profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("heap profile file is empty")
	}

	if err := WriteHeap(filepath.Join(t.TempDir(), "no", "such", "dir", "heap.pprof")); err == nil {
		t.Error("WriteHeap into a missing directory succeeded")
	}
}
