package cache

import "fmt"

// CacheSnapshot is an opaque deep copy of a Cache's timing state: the
// tag array (valid/dirty/LRU per line), the MSHR file, the LRU clock,
// and the accumulated Stats. The caches are tag-only (all data lives
// in mem.Memory), so this plus the MemorySnapshot is the complete
// memory-hierarchy state (DESIGN.md §10).
type CacheSnapshot struct {
	cfg   Config
	lines []line
	mshrs []mshr
	clock int64
	stats Stats
}

// Snapshot captures a deep copy of the cache's timing state.
func (c *Cache) Snapshot() *CacheSnapshot {
	return &CacheSnapshot{
		cfg:   c.cfg,
		lines: append([]line(nil), c.lines...),
		mshrs: append([]mshr(nil), c.mshrs...),
		clock: c.clock,
		stats: c.Stats,
	}
}

// Restore installs a snapshot onto c. The geometry (Config) must match
// the snapshot's — set indexing and associativity are derived from it —
// so a mismatch is reported as an error. The next-level backend and
// tracer bindings are wiring of the target hierarchy and are preserved.
func (c *Cache) Restore(s *CacheSnapshot) error {
	if c.cfg != s.cfg {
		return fmt.Errorf("cache: %s restore config mismatch: have %+v, snapshot %+v", c.cfg.Name, c.cfg, s.cfg)
	}
	c.lines = append(c.lines[:0], s.lines...)
	c.mshrs = append(c.mshrs[:0], s.mshrs...)
	c.clock = s.clock
	c.Stats = s.stats
	return nil
}

// MainMemorySnapshot captures a MainMemory's bus occupancy and traffic
// counters.
type MainMemorySnapshot struct {
	latency       int64
	bytesPerCycle int
	lineSize      int
	busFree       int64
	bytesRead     uint64
	bytesWritten  uint64
}

// Snapshot captures the main-memory model's state.
func (mm *MainMemory) Snapshot() MainMemorySnapshot {
	return MainMemorySnapshot{
		latency:       mm.Latency,
		bytesPerCycle: mm.BytesPerCycle,
		lineSize:      mm.LineSize,
		busFree:       mm.busFree,
		bytesRead:     mm.BytesRead,
		bytesWritten:  mm.BytesWritten,
	}
}

// Restore installs a snapshot onto mm, geometry included (the fields
// are plain configuration, so restoring them is always safe).
func (mm *MainMemory) Restore(s MainMemorySnapshot) {
	mm.Latency = s.latency
	mm.BytesPerCycle = s.bytesPerCycle
	mm.LineSize = s.lineSize
	mm.busFree = s.busFree
	mm.BytesRead = s.bytesRead
	mm.BytesWritten = s.bytesWritten
}
