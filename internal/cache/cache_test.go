package cache

import (
	"testing"
	"testing/quick"

	"memfwd/internal/quickseed"
)

// testHierarchy builds a small L1 -> L2 -> memory stack with easily
// checked latencies.
func testHierarchy(lineSize int) (*Cache, *Cache, *MainMemory) {
	mm := NewMainMemory(70, 8, lineSize)
	l2 := New(Config{
		Name: "L2", SizeBytes: 16 * 1024, LineSize: lineSize, Assoc: 4,
		HitLatency: 10, MSHRs: 8, TransferBytesPerCycle: 16,
	}, mm)
	l1 := New(Config{
		Name: "L1", SizeBytes: 1024, LineSize: lineSize, Assoc: 2,
		HitLatency: 1, MSHRs: 4, TransferBytesPerCycle: 16,
	}, l2)
	return l1, l2, mm
}

func TestColdMissThenHit(t *testing.T) {
	l1, l2, _ := testHierarchy(32)
	ready, out := l1.Access(0x1000, Load, 0)
	if out != FullMiss {
		t.Fatalf("first access outcome %v", out)
	}
	if ready <= 70 {
		t.Fatalf("cold miss too fast: ready at %d", ready)
	}
	// A later access to the same line hits in one cycle.
	ready2, out2 := l1.Access(0x1008, Load, ready)
	if out2 != Hit || ready2 != ready+1 {
		t.Fatalf("got (%d,%v), want hit at +1", ready2, out2)
	}
	if l2.Stats.FullMisses[Load] != 1 {
		t.Fatalf("L2 full misses = %d", l2.Stats.FullMisses[Load])
	}
}

func TestPartialMissCombines(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	ready1, out1 := l1.Access(0x2000, Load, 0)
	if out1 != FullMiss {
		t.Fatal("expected full miss")
	}
	// Second access to the same line while the fill is outstanding.
	ready2, out2 := l1.Access(0x2010, Load, 5)
	if out2 != PartialMiss {
		t.Fatalf("outcome %v, want partial", out2)
	}
	if ready2 != ready1 {
		t.Fatalf("partial miss ready %d, want to share fill completion %d", ready2, ready1)
	}
	if l1.Stats.PartialMisses[Load] != 1 || l1.Stats.FullMisses[Load] != 1 {
		t.Fatalf("stats: %+v", l1.Stats)
	}
}

func TestDistinctLinesAreFullMisses(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	_, out1 := l1.Access(0x2000, Load, 0)
	_, out2 := l1.Access(0x2020, Load, 0)
	if out1 != FullMiss || out2 != FullMiss {
		t.Fatalf("outcomes %v %v", out1, out2)
	}
}

func TestLRUEviction(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	// L1: 1024 B, 32 B lines, 2-way => 16 sets. Three lines mapping to
	// the same set: stride = 16 sets * 32 B = 512 B.
	a, b, c := uint64(0x0), uint64(0x200), uint64(0x400)
	now := int64(0)
	now, _ = l1.Access(a, Load, now)
	now, _ = l1.Access(b, Load, now)
	now, _ = l1.Access(a, Load, now) // touch a: b becomes LRU
	now, _ = l1.Access(c, Load, now) // evicts b
	_, outA := l1.Access(a, Load, now)
	if outA != Hit {
		t.Fatalf("a should still hit, got %v", outA)
	}
	_, outB := l1.Access(b, Load, now+100)
	if outB != FullMiss {
		t.Fatalf("b should have been evicted, got %v", outB)
	}
}

func TestWriteBackOnDirtyEviction(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	now := int64(0)
	now, _ = l1.Access(0x0, Store, now) // dirty
	now, _ = l1.Access(0x200, Load, now)
	now, _ = l1.Access(0x400, Load, now) // evicts 0x0 (dirty)
	_ = now
	if l1.Stats.WriteBacks != 1 {
		t.Fatalf("writebacks = %d, want 1", l1.Stats.WriteBacks)
	}
	if l1.Stats.BytesToNext != 32 {
		t.Fatalf("bytes to next = %d, want 32", l1.Stats.BytesToNext)
	}
}

func TestCleanEvictionNoWriteBack(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	now := int64(0)
	now, _ = l1.Access(0x0, Load, now)
	now, _ = l1.Access(0x200, Load, now)
	now, _ = l1.Access(0x400, Load, now)
	_ = now
	if l1.Stats.WriteBacks != 0 {
		t.Fatalf("writebacks = %d, want 0", l1.Stats.WriteBacks)
	}
}

func TestBandwidthConservation(t *testing.T) {
	// Every fill moves exactly one line; bandwidth counters must equal
	// (fills + writebacks) * lineSize at each level.
	for _, lineSize := range []int{32, 64, 128} {
		l1, l2, mm := testHierarchy(lineSize)
		now := int64(0)
		for i := 0; i < 500; i++ {
			a := uint64((i * 97) % 8192 * 8)
			kind := Load
			if i%3 == 0 {
				kind = Store
			}
			r, _ := l1.Access(a, kind, now)
			now = r
		}
		fills := l1.Stats.FullMisses[Load] + l1.Stats.FullMisses[Store] + l1.Stats.FullMisses[Prefetch]
		wantFrom := fills * uint64(lineSize)
		if l1.Stats.BytesFromNext != wantFrom {
			t.Fatalf("line=%d: L1 BytesFromNext=%d want %d", lineSize, l1.Stats.BytesFromNext, wantFrom)
		}
		if l1.Stats.BytesToNext != l1.Stats.WriteBacks*uint64(lineSize) {
			t.Fatalf("line=%d: L1 BytesToNext=%d writebacks=%d", lineSize, l1.Stats.BytesToNext, l1.Stats.WriteBacks)
		}
		l2Fills := l2.Stats.FullMisses[Load] + l2.Stats.FullMisses[Store]
		if l2.Stats.BytesFromNext != l2Fills*uint64(lineSize) {
			t.Fatalf("line=%d: L2 fill bytes mismatch", lineSize)
		}
		if mm.BytesRead != l2.Stats.BytesFromNext {
			t.Fatalf("line=%d: memory read %d != L2 fill %d", lineSize, mm.BytesRead, l2.Stats.BytesFromNext)
		}
	}
}

func TestOutcomesPartitionAccesses(t *testing.T) {
	l1, _, _ := testHierarchy(64)
	now := int64(0)
	const n = 2000
	for i := 0; i < n; i++ {
		a := uint64((i * 31) % 4096 * 16)
		r, _ := l1.Access(a, Load, now)
		if i%7 == 0 {
			now = r // sometimes wait, sometimes pipeline
		} else {
			now++
		}
	}
	got := l1.Stats.Hits[Load] + l1.Stats.PartialMisses[Load] + l1.Stats.FullMisses[Load]
	if got != n {
		t.Fatalf("hit+partial+full = %d, want %d", got, n)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	l1.PrefetchLine(0x3000, 0)
	// Access long after the prefetch completes: should be a hit.
	ready, out := l1.Access(0x3000, Load, 1000)
	if out != Hit || ready != 1001 {
		t.Fatalf("post-prefetch access: (%d,%v)", ready, out)
	}
	// A prefetch issued too late turns the demand access into a
	// partial miss (combining), still better than a full miss.
	l1.PrefetchLine(0x4000, 0)
	ready2, out2 := l1.Access(0x4000, Load, 3)
	if out2 != PartialMiss {
		t.Fatalf("late-prefetch access outcome %v", out2)
	}
	if ready2 <= 4 {
		t.Fatalf("partial miss ready %d suspiciously fast", ready2)
	}
}

func TestPrefetchDroppedWhenMSHRsBusy(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	// Fill all 4 L1 MSHRs with demand misses at time 0.
	for i := 0; i < 4; i++ {
		l1.Access(uint64(0x8000+i*0x40), Load, 0)
	}
	l1.PrefetchLine(0xF000, 0)
	if l1.Stats.PrefetchesDropped != 1 {
		t.Fatalf("dropped = %d, want 1", l1.Stats.PrefetchesDropped)
	}
}

func TestMSHRStallDelaysDemandMiss(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	for i := 0; i < 4; i++ {
		l1.Access(uint64(0x8000+i*0x40), Load, 0)
	}
	// Fifth distinct miss at time 0 must wait for an MSHR.
	l1.Access(0xF000, Load, 0)
	if l1.Stats.MSHRStallCycles == 0 {
		t.Fatal("expected MSHR stall cycles")
	}
}

func TestMemoryBusOccupancySerializesFills(t *testing.T) {
	mm := NewMainMemory(70, 8, 64)
	r1 := mm.Fetch(0x0, 0)
	r2 := mm.Fetch(0x1000, 0)
	if r2 <= r1 {
		t.Fatalf("concurrent fills not serialized: %d then %d", r1, r2)
	}
	if r2-r1 != 8 { // 64 bytes at 8 B/cycle
		t.Fatalf("bus occupancy gap = %d, want 8", r2-r1)
	}
}

func TestLongerLinesCostMoreAtMemory(t *testing.T) {
	t32 := NewMainMemory(70, 8, 32).Fetch(0, 0)
	t128 := NewMainMemory(70, 8, 128).Fetch(0, 0)
	if t128 <= t32 {
		t.Fatalf("128B fill (%d) should be slower than 32B (%d)", t128, t32)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "x", SizeBytes: 1000, LineSize: 33, Assoc: 2},
		{Name: "x", SizeBytes: 1024, LineSize: 32, Assoc: 5},
		{Name: "x", SizeBytes: 0, LineSize: 32, Assoc: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, NewMainMemory(70, 8, cfg.LineSize))
		}()
	}
}

// Property: the sequence of outcomes is deterministic in the address
// trace, and the miss classification partitions all accesses.
func TestAccessDeterminismProperty(t *testing.T) {
	run := func(addrs []uint16) ([3]uint64, [3]uint64, [3]uint64) {
		l1, _, _ := testHierarchy(32)
		now := int64(0)
		for _, a := range addrs {
			r, _ := l1.Access(uint64(a)*8, Load, now)
			now = (now + r) / 2 // deterministic advance
		}
		return l1.Stats.Hits, l1.Stats.PartialMisses, l1.Stats.FullMisses
	}
	prop := func(addrs []uint16) bool {
		h1, p1, f1 := run(addrs)
		h2, p2, f2 := run(addrs)
		if h1 != h2 || p1 != p2 || f1 != f2 {
			return false
		}
		return h1[Load]+p1[Load]+f1[Load] == uint64(len(addrs))
	}
	if err := quick.Check(prop, quickseed.Config(t, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBackMissForwardsDown(t *testing.T) {
	_, l2, mm := testHierarchy(32)
	// A line not present in L2 written back from above goes to memory.
	l2.WriteBack(0xABC0, 0)
	if mm.BytesWritten != 32 {
		t.Fatalf("memory writes = %d, want 32", mm.BytesWritten)
	}
	if l2.Stats.BytesToNext != 32 {
		t.Fatalf("L2 bytes to next = %d", l2.Stats.BytesToNext)
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Hit.String() != "hit" || PartialMiss.String() != "partial" || FullMiss.String() != "full" {
		t.Fatal("outcome strings")
	}
}

func TestMissesHelper(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	l1.Access(0x0, Load, 0)
	l1.Access(0x8, Load, 1) // partial (same line, fill outstanding)
	if l1.Stats.Misses(Load) != 2 {
		t.Fatalf("Misses = %d", l1.Stats.Misses(Load))
	}
}

func TestLineSizeAndLineAddr(t *testing.T) {
	l1, _, _ := testHierarchy(64)
	if l1.LineSize() != 64 {
		t.Fatalf("LineSize = %d", l1.LineSize())
	}
	if got := l1.LineAddr(0x12345); got != 0x12340 {
		t.Fatalf("LineAddr = %#x", got)
	}
}

func TestInvalidateAndPresent(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	r, _ := l1.Access(0x1000, Store, 0)
	if !l1.Present(0x1010) {
		t.Fatal("line not present after access")
	}
	if !l1.Invalidate(0x1008) {
		t.Fatal("invalidate missed a present line")
	}
	if l1.Present(0x1000) {
		t.Fatal("line still present after invalidate")
	}
	if l1.Invalidate(0x1000) {
		t.Fatal("second invalidate should miss")
	}
	// A dirty line dropped by Invalidate must not write back.
	wb := l1.Stats.WriteBacks
	l1.Access(0x1000, Load, r+100)
	if l1.Stats.WriteBacks != wb {
		t.Fatal("invalidate leaked a writeback")
	}
}

func TestContentsCountsValidLines(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	now := int64(0)
	for i := 0; i < 5; i++ {
		r, _ := l1.Access(uint64(i)*0x40, Load, now)
		now = r
	}
	if got := l1.Contents(); got != 5 {
		t.Fatalf("Contents = %d", got)
	}
	l1.Invalidate(0)
	if got := l1.Contents(); got != 4 {
		t.Fatalf("after invalidate: %d", got)
	}
}

func TestDefaultedConfigFields(t *testing.T) {
	// MSHRs and transfer width default when zero.
	c := New(Config{Name: "d", SizeBytes: 1024, LineSize: 32, Assoc: 2, HitLatency: 1},
		NewMainMemory(70, 0, 32)) // bytesPerCycle also defaults
	for i := 0; i < 12; i++ {
		c.Access(uint64(i)*0x40, Load, 0) // would panic with 0 MSHRs
	}
}

func TestPrefetchAlreadyOutstandingIsNoop(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	l1.Access(0x5000, Load, 0) // miss outstanding
	dropped := l1.Stats.PrefetchesDropped
	full := l1.Stats.FullMisses[Prefetch]
	l1.PrefetchLine(0x5000, 1) // same line, fill in flight
	if l1.Stats.PrefetchesDropped != dropped || l1.Stats.FullMisses[Prefetch] != full {
		t.Fatal("prefetch of an in-flight line should be a silent no-op")
	}
}
