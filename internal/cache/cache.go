// Package cache models the two-level cache hierarchy the paper's
// evaluation observes (Section 4): set-associative write-back caches
// with configurable line size, MSHRs that combine misses to the same
// line (the paper's partial vs. full miss distinction, Figure 6a),
// software block prefetch (Section 5.2), and bandwidth accounting for
// both the primary↔secondary and secondary↔memory links (Figure 6b).
//
// Timing is expressed functionally: every access takes the current
// cycle and returns the cycle at which its data is available. State
// (tags, LRU, MSHRs, bus occupancy) advances as calls arrive in
// non-decreasing time order, which the in-order-graduation CPU model
// guarantees to first order.
package cache

import (
	"fmt"

	"memfwd/internal/obs"
)

// Kind distinguishes demand loads, demand stores, and prefetches for
// the per-class statistics the figures need.
type Kind uint8

const (
	Load Kind = iota
	Store
	Prefetch
)

// Outcome classifies one access the way Figure 6(a) does.
type Outcome uint8

const (
	Hit Outcome = iota
	// PartialMiss combined with an outstanding miss to the same line
	// and so does not necessarily suffer the full miss latency.
	PartialMiss
	// FullMiss did not combine with any access and suffers the full
	// latency.
	FullMiss
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case PartialMiss:
		return "partial"
	default:
		return "full"
	}
}

// Backend is the next level down: it can fill a line and absorb a
// writeback. MainMemory terminates the chain.
type Backend interface {
	// Fetch requests the line containing lineAddr at cycle now and
	// returns the cycle its data arrives at the requesting level.
	Fetch(lineAddr uint64, now int64) int64
	// WriteBack hands a dirty line down at cycle now.
	WriteBack(lineAddr uint64, now int64)
}

// Config sizes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	LineSize   int
	Assoc      int
	HitLatency int64
	MSHRs      int
	// TransferBytesPerCycle models the fill port to the level above:
	// a fill of one line occupies ceil(LineSize/Transfer) cycles on top
	// of the hit latency, so long lines genuinely cost more to move.
	TransferBytesPerCycle int
}

// Stats for one level, split by access kind.
type Stats struct {
	Hits          [3]uint64 // indexed by Kind
	PartialMisses [3]uint64
	FullMisses    [3]uint64
	WriteBacks    uint64
	// BytesFromNext counts fill traffic from the level below;
	// BytesToNext counts writeback traffic to it. Their sum is the
	// bandwidth on the link below this level (Figure 6b).
	BytesFromNext uint64
	BytesToNext   uint64
	// MSHRStallCycles accumulates delay imposed because all MSHRs were
	// busy when a demand miss arrived.
	MSHRStallCycles   int64
	PrefetchesDropped uint64 // prefetches skipped for lack of an MSHR
}

// Misses returns partial+full misses for kind k.
func (s *Stats) Misses(k Kind) uint64 { return s.PartialMisses[k] + s.FullMisses[k] }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   int64
}

type mshr struct {
	lineAddr uint64
	ready    int64
	inUse    bool
}

// Cache is one set-associative write-back, write-allocate level.
type Cache struct {
	cfg  Config
	next Backend
	// lines holds all sets contiguously (assoc entries per set): one
	// flat slice keeps set selection to a single index computation with
	// no per-set slice header chase on the hit path.
	lines []line
	assoc int
	mshrs []mshr

	setShift uint
	setMask  uint64
	lineMask uint64

	clock int64 // monotone access clock for LRU

	trace *obs.Tracer
	level uint8

	Stats Stats
}

// New builds a cache level over the given backend. It panics on
// non-power-of-two geometry, which is a configuration bug.
func New(cfg Config, next Backend) *Cache {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	nLines := cfg.SizeBytes / cfg.LineSize
	if cfg.Assoc <= 0 || nLines%cfg.Assoc != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d line=%d assoc=%d", cfg.Name, cfg.SizeBytes, cfg.LineSize, cfg.Assoc))
	}
	nSets := nLines / cfg.Assoc
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets not a power of two", cfg.Name, nSets))
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 8
	}
	if cfg.TransferBytesPerCycle <= 0 {
		cfg.TransferBytesPerCycle = 16
	}
	c := &Cache{
		cfg:      cfg,
		next:     next,
		lines:    make([]line, nLines),
		assoc:    cfg.Assoc,
		mshrs:    make([]mshr, cfg.MSHRs),
		lineMask: ^uint64(cfg.LineSize - 1),
		setMask:  uint64(nSets - 1),
	}
	for s := uint(0); (1 << s) < cfg.LineSize; s++ {
		c.setShift = s + 1
	}
	return c
}

// SetTracer attaches t (nil detaches) and tags this cache's miss
// events with the given hierarchy level (1 = primary, 2 = secondary).
func (c *Cache) SetTracer(t *obs.Tracer, level uint8) {
	c.trace = t
	c.level = level
}

// RegisterMetrics exposes this level's statistics as registry views
// under the given prefix (e.g. "l1"). The Stats struct remains the
// source of truth; views read it lazily at snapshot time.
func (c *Cache) RegisterMetrics(r *obs.Registry, prefix string) {
	for _, k := range []struct {
		kind Kind
		name string
	}{{Load, "load"}, {Store, "store"}, {Prefetch, "prefetch"}} {
		kind := k.kind
		r.GaugeFunc(prefix+".hits."+k.name, func() float64 { return float64(c.Stats.Hits[kind]) })
		r.GaugeFunc(prefix+".misses.partial."+k.name, func() float64 { return float64(c.Stats.PartialMisses[kind]) })
		r.GaugeFunc(prefix+".misses.full."+k.name, func() float64 { return float64(c.Stats.FullMisses[kind]) })
	}
	r.GaugeFunc(prefix+".writebacks", func() float64 { return float64(c.Stats.WriteBacks) })
	r.GaugeFunc(prefix+".bytes.from_next", func() float64 { return float64(c.Stats.BytesFromNext) })
	r.GaugeFunc(prefix+".bytes.to_next", func() float64 { return float64(c.Stats.BytesToNext) })
	r.GaugeFunc(prefix+".mshr.stall_cycles", func() float64 { return float64(c.Stats.MSHRStallCycles) })
	r.GaugeFunc(prefix+".prefetches.dropped", func() float64 { return float64(c.Stats.PrefetchesDropped) })
}

// LineSize returns the configured line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// LineAddr returns the line-aligned address containing a.
func (c *Cache) LineAddr(a uint64) uint64 { return a & c.lineMask }

func (c *Cache) set(lineAddr uint64) []line {
	s := int((lineAddr >> c.setShift) & c.setMask)
	return c.lines[s*c.assoc : (s+1)*c.assoc]
}

func (c *Cache) lookup(lineAddr uint64) *line {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// outstanding returns the MSHR tracking lineAddr if its fill has not yet
// completed by cycle now.
//
// The scan is deliberately not short-circuited by a max-ready
// watermark: access timestamps are only approximately monotone (store
// drains run at graduation time, loads at issue time), and the lazy
// inUse-clearing side effects of the scan at large now values are
// observable by later calls at smaller now values; skipping them
// changes miss classifications.
func (c *Cache) outstanding(lineAddr uint64, now int64) *mshr {
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.inUse && m.lineAddr == lineAddr {
			if m.ready <= now {
				m.inUse = false
				return nil
			}
			return m
		}
	}
	return nil
}

// allocMSHR grabs a free MSHR at cycle now. If all are busy it returns
// the stall needed until the earliest one retires (demand misses wait;
// prefetches drop instead).
func (c *Cache) allocMSHR(now int64) (*mshr, int64) {
	var earliest int64 = 1<<62 - 1
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.inUse && m.ready <= now {
			m.inUse = false
		}
		if !m.inUse {
			return m, 0
		}
		if m.ready < earliest {
			earliest = m.ready
		}
	}
	return nil, earliest - now
}

// fill brings lineAddr in from the next level starting at cycle now,
// evicting as needed, and returns the arrival cycle.
func (c *Cache) fill(lineAddr uint64, now int64, dirty bool) int64 {
	ready := c.next.Fetch(lineAddr, now)
	ready += int64((c.cfg.LineSize + c.cfg.TransferBytesPerCycle - 1) / c.cfg.TransferBytesPerCycle)
	c.Stats.BytesFromNext += uint64(c.cfg.LineSize)

	set := c.set(lineAddr)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	if victim.valid && victim.dirty {
		c.Stats.WriteBacks++
		c.Stats.BytesToNext += uint64(c.cfg.LineSize)
		c.next.WriteBack(victim.tag, now)
	}
	*victim = line{tag: lineAddr, valid: true, dirty: dirty, lru: c.clock}
	return ready
}

// Access performs a demand access of the given kind to address a at
// cycle now, returning the data-ready cycle and the miss classification.
func (c *Cache) Access(a uint64, kind Kind, now int64) (ready int64, out Outcome) {
	c.clock++
	lineAddr := a & c.lineMask
	if ln := c.lookup(lineAddr); ln != nil {
		ln.lru = c.clock
		if kind == Store {
			ln.dirty = true
		}
		if m := c.outstanding(lineAddr, now); m != nil {
			// Tag present but fill in flight: combines with the
			// outstanding miss (partial miss).
			c.Stats.PartialMisses[kind]++
			if c.trace != nil {
				c.trace.Emit(obs.Event{Cycle: now, Kind: obs.KCacheMiss,
					Level: c.level, Class: uint8(kind), Flag: true, Addr: lineAddr})
			}
			return maxI64(m.ready, now+c.cfg.HitLatency), PartialMiss
		}
		c.Stats.Hits[kind]++
		return now + c.cfg.HitLatency, Hit
	}
	// Full miss.
	m, stall := c.allocMSHR(now)
	if m == nil {
		c.Stats.MSHRStallCycles += stall
		now += stall
		m, _ = c.allocMSHR(now)
		if m == nil {
			panic("cache: MSHR still unavailable after stall")
		}
	}
	c.Stats.FullMisses[kind]++
	if c.trace != nil {
		c.trace.Emit(obs.Event{Cycle: now, Kind: obs.KCacheMiss,
			Level: c.level, Class: uint8(kind), Addr: lineAddr})
	}
	ready = c.fill(lineAddr, now+c.cfg.HitLatency, kind == Store)
	*m = mshr{lineAddr: lineAddr, ready: ready, inUse: true}
	return ready, FullMiss
}

// PrefetchLine initiates a non-blocking fill of the line containing a at
// cycle now. It is dropped silently when the line is already present or
// in flight, or when no MSHR is free — exactly the behaviour software
// prefetch instructions have on real machines.
func (c *Cache) PrefetchLine(a uint64, now int64) {
	c.clock++
	lineAddr := a & c.lineMask
	if ln := c.lookup(lineAddr); ln != nil {
		if c.outstanding(lineAddr, now) == nil {
			c.Stats.Hits[Prefetch]++
		}
		return
	}
	m, _ := c.allocMSHR(now)
	if m == nil {
		c.Stats.PrefetchesDropped++
		return
	}
	c.Stats.FullMisses[Prefetch]++
	ready := c.fill(lineAddr, now+c.cfg.HitLatency, false)
	*m = mshr{lineAddr: lineAddr, ready: ready, inUse: true}
}

// Fetch lets this cache serve as the backend of the level above.
func (c *Cache) Fetch(lineAddr uint64, now int64) int64 {
	ready, _ := c.Access(lineAddr, Load, now)
	return ready
}

// WriteBack absorbs a dirty line from the level above.
func (c *Cache) WriteBack(lineAddr uint64, now int64) {
	c.clock++
	if ln := c.lookup(lineAddr & c.lineMask); ln != nil {
		ln.dirty = true
		ln.lru = c.clock
		return
	}
	// Victim missed here: forward straight to the next level (no
	// write-allocate for victims, avoiding pollution).
	c.Stats.BytesToNext += uint64(c.cfg.LineSize)
	c.next.WriteBack(lineAddr, now)
}

// Invalidate drops the line containing a if present, returning whether
// it was (and discarding dirty data — the coherence layer is
// responsible for any transfer). Used by the multiprocessor extension.
func (c *Cache) Invalidate(a uint64) bool {
	lineAddr := a & c.lineMask
	if ln := c.lookup(lineAddr); ln != nil {
		ln.valid = false
		ln.dirty = false
		return true
	}
	return false
}

// Present reports whether the line containing a is resident.
func (c *Cache) Present(a uint64) bool { return c.lookup(a&c.lineMask) != nil }

// ForEachLine calls fn for every valid line with its line-aligned
// address and dirty bit. Invariant checkers use it to verify that the
// timing model only caches lines of memory that functionally exists.
func (c *Cache) ForEachLine(fn func(lineAddr uint64, dirty bool)) {
	for i := range c.lines {
		if c.lines[i].valid {
			fn(c.lines[i].tag, c.lines[i].dirty)
		}
	}
}

// Contents returns the number of valid lines (test support).
func (c *Cache) Contents() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// MainMemory terminates the hierarchy: fixed access latency plus a
// shared bus whose occupancy scales with the line size, so that long
// lines consume real bandwidth (the effect behind Figure 6b).
type MainMemory struct {
	Latency       int64
	BytesPerCycle int
	busFree       int64

	BytesRead    uint64
	BytesWritten uint64
	LineSize     int

	// TierLatency, when non-nil, overrides Latency per line with the
	// miss penalty of the memory tier owning that address
	// (mem.Tiers.LineLatency). Nil is the untiered flat-DRAM model.
	// The hook is derived from machine configuration, not simulation
	// state, so snapshots neither save nor restore it.
	TierLatency func(lineAddr uint64) int64
}

// NewMainMemory builds the DRAM model.
func NewMainMemory(latency int64, bytesPerCycle, lineSize int) *MainMemory {
	if bytesPerCycle <= 0 {
		bytesPerCycle = 8
	}
	return &MainMemory{Latency: latency, BytesPerCycle: bytesPerCycle, LineSize: lineSize}
}

func (mm *MainMemory) transfer(now int64) int64 {
	occupy := int64((mm.LineSize + mm.BytesPerCycle - 1) / mm.BytesPerCycle)
	start := maxI64(now, mm.busFree)
	mm.busFree = start + occupy
	return start + occupy
}

// Fetch returns the cycle the requested line arrives from DRAM.
func (mm *MainMemory) Fetch(lineAddr uint64, now int64) int64 {
	mm.BytesRead += uint64(mm.LineSize)
	lat := mm.Latency
	if mm.TierLatency != nil {
		lat = mm.TierLatency(lineAddr)
	}
	return mm.transfer(now + lat)
}

// WriteBack absorbs a dirty line, occupying the bus.
func (mm *MainMemory) WriteBack(lineAddr uint64, now int64) {
	mm.BytesWritten += uint64(mm.LineSize)
	mm.transfer(now)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
