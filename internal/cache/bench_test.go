package cache

import "testing"

var benchReady int64

func BenchmarkAccessL1Hit(b *testing.B) {
	l1, _, _ := testHierarchy(32)
	now, _ := l1.Access(0x1000, Load, 0) // warm the line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now, _ = l1.Access(0x1000|uint64(i&0x18), Load, now)
	}
	benchReady = now
}

func BenchmarkAccessL1StoreHit(b *testing.B) {
	l1, _, _ := testHierarchy(32)
	now, _ := l1.Access(0x1000, Store, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now, _ = l1.Access(0x1000|uint64(i&0x18), Store, now)
	}
	benchReady = now
}

func BenchmarkAccessMissStream(b *testing.B) {
	l1, _, _ := testHierarchy(32)
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		// Stride one line; the footprint wraps far outside L2 so the
		// stream keeps missing.
		now, _ = l1.Access(uint64(i%(1<<16))*32, Load, now)
	}
	benchReady = now
}

// A cache hit is the per-reference common case; it must not allocate.
func TestAccessHitZeroAlloc(t *testing.T) {
	l1, _, _ := testHierarchy(32)
	now, _ := l1.Access(0x1000, Load, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		now, _ = l1.Access(0x1000, Load, now)
	})
	benchReady = now
	if allocs != 0 {
		t.Fatalf("hit-path Access allocated %.1f times per run, want 0", allocs)
	}
}
