package cache

// Binary codec for the cache snapshots, built on internal/wire. Decode
// validates the geometry with the same rules New enforces by panic —
// before any size arithmetic — so a corrupted snapshot is an error
// from the decoder, never a panic in cache construction downstream.

import (
	"memfwd/internal/wire"
)

const (
	lineEncBytes = 8 + 1 + 1 + 8 // tag, valid, dirty, lru
	mshrEncBytes = 8 + 8 + 1     // lineAddr, ready, inUse
)

// EncodeStats appends a Stats encoding to w. Exported because sim's
// aggregate Stats embeds cache.Stats per level.
func EncodeStats(w *wire.Writer, s *Stats) {
	for _, v := range s.Hits {
		w.U64(v)
	}
	for _, v := range s.PartialMisses {
		w.U64(v)
	}
	for _, v := range s.FullMisses {
		w.U64(v)
	}
	w.U64(s.WriteBacks)
	w.U64(s.BytesFromNext)
	w.U64(s.BytesToNext)
	w.I64(s.MSHRStallCycles)
	w.U64(s.PrefetchesDropped)
}

// DecodeStats reads a Stats encoded by EncodeStats.
func DecodeStats(r *wire.Reader) Stats {
	var s Stats
	for i := range s.Hits {
		s.Hits[i] = r.U64()
	}
	for i := range s.PartialMisses {
		s.PartialMisses[i] = r.U64()
	}
	for i := range s.FullMisses {
		s.FullMisses[i] = r.U64()
	}
	s.WriteBacks = r.U64()
	s.BytesFromNext = r.U64()
	s.BytesToNext = r.U64()
	s.MSHRStallCycles = r.I64()
	s.PrefetchesDropped = r.U64()
	return s
}

// EncodeWire appends the cache snapshot's encoding to w.
func (s *CacheSnapshot) EncodeWire(w *wire.Writer) {
	w.String(s.cfg.Name)
	w.Int(s.cfg.SizeBytes)
	w.Int(s.cfg.LineSize)
	w.Int(s.cfg.Assoc)
	w.I64(s.cfg.HitLatency)
	w.Int(s.cfg.MSHRs)
	w.Int(s.cfg.TransferBytesPerCycle)
	w.U32(uint32(len(s.lines)))
	for _, ln := range s.lines {
		w.U64(ln.tag)
		w.Bool(ln.valid)
		w.Bool(ln.dirty)
		w.I64(ln.lru)
	}
	w.U32(uint32(len(s.mshrs)))
	for _, m := range s.mshrs {
		w.U64(m.lineAddr)
		w.I64(m.ready)
		w.Bool(m.inUse)
	}
	w.I64(s.clock)
	EncodeStats(w, &s.stats)
}

// DecodeCacheSnapshot reads a snapshot encoded by EncodeWire,
// validating the geometry against the invariants New enforces. Errors
// latch on r.
func DecodeCacheSnapshot(r *wire.Reader) *CacheSnapshot {
	s := &CacheSnapshot{}
	s.cfg.Name = r.String()
	s.cfg.SizeBytes = r.Int()
	s.cfg.LineSize = r.Int()
	s.cfg.Assoc = r.Int()
	s.cfg.HitLatency = r.I64()
	s.cfg.MSHRs = r.Int()
	s.cfg.TransferBytesPerCycle = r.Int()
	if r.Err() != nil {
		return s
	}
	// Mirror the construction-time panics as decode errors, checking
	// divisors before dividing.
	cfg := s.cfg
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		r.Failf("cache: %s line size %d not a positive power of two", cfg.Name, cfg.LineSize)
		return s
	}
	if cfg.SizeBytes <= 0 || cfg.Assoc <= 0 {
		r.Failf("cache: %s geometry size=%d assoc=%d invalid", cfg.Name, cfg.SizeBytes, cfg.Assoc)
		return s
	}
	nLines := cfg.SizeBytes / cfg.LineSize
	if nLines <= 0 || nLines%cfg.Assoc != 0 {
		r.Failf("cache: %s %d lines not divisible into %d ways", cfg.Name, nLines, cfg.Assoc)
		return s
	}
	nSets := nLines / cfg.Assoc
	if nSets&(nSets-1) != 0 {
		r.Failf("cache: %s set count %d not a power of two", cfg.Name, nSets)
		return s
	}
	if cfg.MSHRs <= 0 {
		r.Failf("cache: %s MSHR count %d invalid", cfg.Name, cfg.MSHRs)
		return s
	}

	nl := r.Count(lineEncBytes)
	if r.Err() == nil && nl != nLines {
		r.Failf("cache: %s has %d lines, geometry needs %d", cfg.Name, nl, nLines)
		return s
	}
	s.lines = make([]line, nl)
	for i := range s.lines {
		s.lines[i].tag = r.U64()
		s.lines[i].valid = r.Bool()
		s.lines[i].dirty = r.Bool()
		s.lines[i].lru = r.I64()
	}
	nm := r.Count(mshrEncBytes)
	if r.Err() == nil && nm != cfg.MSHRs {
		r.Failf("cache: %s has %d MSHR entries, config says %d", cfg.Name, nm, cfg.MSHRs)
		return s
	}
	s.mshrs = make([]mshr, nm)
	for i := range s.mshrs {
		s.mshrs[i].lineAddr = r.U64()
		s.mshrs[i].ready = r.I64()
		s.mshrs[i].inUse = r.Bool()
	}
	s.clock = r.I64()
	s.stats = DecodeStats(r)
	return s
}

// EncodeWire appends the main-memory snapshot's encoding to w.
func (s *MainMemorySnapshot) EncodeWire(w *wire.Writer) {
	w.I64(s.latency)
	w.Int(s.bytesPerCycle)
	w.Int(s.lineSize)
	w.I64(s.busFree)
	w.U64(s.bytesRead)
	w.U64(s.bytesWritten)
}

// DecodeMainMemorySnapshot reads a snapshot encoded by EncodeWire.
func DecodeMainMemorySnapshot(r *wire.Reader) MainMemorySnapshot {
	return MainMemorySnapshot{
		latency:       r.I64(),
		bytesPerCycle: r.Int(),
		lineSize:      r.Int(),
		busFree:       r.I64(),
		bytesRead:     r.U64(),
		bytesWritten:  r.U64(),
	}
}
