// Package cpu models the out-of-order superscalar processor the paper
// evaluates on (Section 4): a W-wide dispatch/graduation pipeline with a
// reorder buffer, a store buffer, and data-dependence speculation
// (Section 3.2).
//
// The model is trace-driven and analytic: instructions are processed in
// program order; each is assigned a dispatch time (bounded by dispatch
// bandwidth and ROB occupancy) and a completion time (loads complete
// when the cache hierarchy delivers their data — including any
// forwarding hops, which the machine layer chains as dependent
// accesses). Graduation is in-order at W per cycle, and every
// non-graduating slot is attributed to the oldest instruction exactly as
// Figure 5's legend defines: load stall, store stall, or inst stall.
//
// Memory forwarding delays a store's *final* address until the store
// completes. The pipeline therefore speculates that every reference's
// final address equals its initial address; a violation (overlapping
// final ranges but disjoint initial ranges between a load and an
// in-flight earlier store) costs a re-execution penalty, mirroring the
// data-dependence speculation discussion in Section 3.2.
package cpu

import "memfwd/internal/obs"

// StallClass attributes non-graduating slots per Figure 5.
type StallClass uint8

const (
	Busy StallClass = iota
	LoadStall
	StoreStall
	InstStall
	nClasses
)

func (c StallClass) String() string {
	switch c {
	case Busy:
		return "busy"
	case LoadStall:
		return "load stall"
	case StoreStall:
		return "store stall"
	default:
		return "inst stall"
	}
}

// Range is a byte range [Lo, Hi) touched by a memory reference.
type Range struct {
	Lo, Hi uint64
}

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool { return r.Lo < o.Hi && o.Lo < r.Hi }

// Config sizes the pipeline.
type Config struct {
	Width       int   // dispatch and graduation width
	ROB         int   // reorder-buffer entries
	StoreBuffer int   // outstanding post-graduation store drains
	DepPenalty  int64 // cycles to re-execute after a violated dependence
}

// DefaultConfig matches the class of machine the paper simulates.
func DefaultConfig() Config {
	return Config{Width: 4, ROB: 64, StoreBuffer: 16, DepPenalty: 16}
}

// Stats accumulates graduation-slot and speculation accounting.
type Stats struct {
	Cycles       int64
	Slots        [nClasses]uint64 // busy + the three stall classes
	Instructions uint64
	Loads        uint64
	Stores       uint64

	DepViolations uint64
	DepBypasses   uint64 // store-to-load forwards from the store buffer
}

// TotalSlots returns width × cycles after Finalize.
func (s *Stats) TotalSlots() uint64 {
	var t uint64
	for _, v := range s.Slots {
		t += v
	}
	return t
}

type inflightStore struct {
	init, final Range
	gradTime    int64
}

// Pipeline is the processor model. Create with New; feed instructions in
// program order via Op, Load, Store, and Prefetch; then call Finalize.
type Pipeline struct {
	cfg Config

	// Dispatch stream.
	dispCycle int64
	dispUsed  int

	// Graduation stream.
	gradCycle int64
	gradUsed  int

	// Ring of graduation times of the last ROB instructions.
	robGrad []int64
	robPos  int
	robSeen uint64

	// Store buffer: completion times of outstanding drains.
	sb      []int64
	sbHead  int
	sbCount int

	// In-flight stores for dependence speculation.
	stores []inflightStore

	finalized bool

	trace *obs.Tracer

	Stats Stats
}

// New returns a pipeline with the given configuration; zero fields fall
// back to DefaultConfig values.
func New(cfg Config) *Pipeline {
	d := DefaultConfig()
	if cfg.Width <= 0 {
		cfg.Width = d.Width
	}
	if cfg.ROB <= 0 {
		cfg.ROB = d.ROB
	}
	if cfg.StoreBuffer <= 0 {
		cfg.StoreBuffer = d.StoreBuffer
	}
	if cfg.DepPenalty <= 0 {
		cfg.DepPenalty = d.DepPenalty
	}
	return &Pipeline{
		cfg:     cfg,
		robGrad: make([]int64, cfg.ROB),
		sb:      make([]int64, cfg.StoreBuffer),
	}
}

// Config returns the effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// SetTracer attaches t (nil detaches); the pipeline emits
// data-dependence speculation violations.
func (p *Pipeline) SetTracer(t *obs.Tracer) { p.trace = t }

// RegisterMetrics exposes the pipeline statistics as registry views
// under the given prefix (e.g. "cpu").
func (p *Pipeline) RegisterMetrics(r *obs.Registry, prefix string) {
	r.GaugeFunc(prefix+".cycles", func() float64 { return float64(p.Stats.Cycles) })
	r.GaugeFunc(prefix+".instructions", func() float64 { return float64(p.Stats.Instructions) })
	r.GaugeFunc(prefix+".loads", func() float64 { return float64(p.Stats.Loads) })
	r.GaugeFunc(prefix+".stores", func() float64 { return float64(p.Stats.Stores) })
	for cls, name := range map[StallClass]string{
		Busy: "busy", LoadStall: "load_stall", StoreStall: "store_stall", InstStall: "inst_stall",
	} {
		cls := cls
		r.GaugeFunc(prefix+".slots."+name, func() float64 { return float64(p.Stats.Slots[cls]) })
	}
	r.GaugeFunc(prefix+".dep.violations", func() float64 { return float64(p.Stats.DepViolations) })
	r.GaugeFunc(prefix+".dep.bypasses", func() float64 { return float64(p.Stats.DepBypasses) })
}

// dispatch assigns the next instruction's dispatch cycle, honouring
// dispatch bandwidth and ROB occupancy.
func (p *Pipeline) dispatch() int64 {
	if p.dispUsed == p.cfg.Width {
		p.dispCycle++
		p.dispUsed = 0
	}
	// The instruction ROB entries older cannot be reused until the
	// instruction ROB-entries back has graduated.
	if p.robSeen >= uint64(p.cfg.ROB) {
		if lb := p.robGrad[p.robPos]; lb > p.dispCycle {
			p.dispCycle = lb
			p.dispUsed = 0
		}
	}
	p.dispUsed++
	return p.dispCycle
}

// graduate retires the instruction that becomes ready at cycle ready,
// charging any non-graduating slots to class, and records its
// graduation time in the ROB ring. Returns the graduation cycle.
func (p *Pipeline) graduate(ready int64, class StallClass) int64 {
	if p.gradUsed == p.cfg.Width {
		p.gradCycle++
		p.gradUsed = 0
	}
	if ready > p.gradCycle {
		gap := ready - p.gradCycle
		stall := uint64(p.cfg.Width-p.gradUsed) + uint64(gap-1)*uint64(p.cfg.Width)
		p.Stats.Slots[class] += stall
		p.gradCycle = ready
		p.gradUsed = 0
	}
	p.Stats.Slots[Busy]++
	p.gradUsed++

	p.robGrad[p.robPos] = p.gradCycle
	p.robPos++
	if p.robPos == p.cfg.ROB {
		p.robPos = 0
	}
	p.robSeen++
	return p.gradCycle
}

// Bubble models a front-end stall (e.g. a mispredicted branch): the
// dispatch stream advances n cycles with no instructions entering the
// window. If graduation catches up, the resulting empty slots are
// charged to the class of the next graduating instruction.
func (p *Pipeline) Bubble(n int64) {
	if n <= 0 {
		return
	}
	p.dispCycle += n
	p.dispUsed = 0
}

// Op feeds one non-memory instruction with the given execution latency
// (1 for simple ALU ops; larger values model dependence chains, branch
// resolution, and multi-cycle ops, and show up as inst stall).
func (p *Pipeline) Op(lat int64) {
	if lat < 1 {
		lat = 1
	}
	d := p.dispatch()
	p.Stats.Instructions++
	p.graduate(d+lat, InstStall)
}

// LoadInfo reports the timing of one load for latency statistics.
type LoadInfo struct {
	Issue    int64
	Ready    int64
	Violated bool
	Bypassed bool
}

// Load feeds one load. init and final are the byte ranges of the
// reference's initial and final addresses (they differ only when the
// reference was forwarded). minIssue delays issue until the load's
// address operand is available — the machine layer computes it from
// pointer provenance, which is what serializes pointer-chasing chains
// (Section 2.2's motivation for linearization). access performs the
// timed cache walk — forwarding hops are chained inside it — given the
// issue cycle, returning the data-ready cycle.
func (p *Pipeline) Load(init, final Range, minIssue int64, access func(issue int64) int64) LoadInfo {
	d := p.dispatch()
	p.Stats.Instructions++
	p.Stats.Loads++
	p.pruneStores(d)
	if minIssue > d {
		d = minIssue
	}

	info := LoadInfo{Issue: d}
	bypass := false
	violated := false
	for i := range p.stores {
		st := &p.stores[i]
		if st.gradTime <= d {
			continue
		}
		switch {
		case st.init.Overlaps(init):
			// The hardware sees matching initial addresses and forwards
			// from the store buffer: no speculation needed.
			bypass = true
		case st.final.Overlaps(final):
			// Initial addresses differed, final addresses collide: the
			// speculation that final==initial was wrong.
			violated = true
		}
	}
	ready := access(d)
	if bypass {
		// Store-to-load forwarding satisfies the load quickly, but the
		// cache walk above still happened architecturally (the line is
		// warmed); the data itself arrives from the buffer.
		if fast := d + 1; fast < ready {
			ready = fast
		}
		p.Stats.DepBypasses++
		info.Bypassed = true
	}
	if violated {
		ready += p.cfg.DepPenalty
		p.Stats.DepViolations++
		info.Violated = true
		if p.trace != nil {
			p.trace.Emit(obs.Event{Cycle: d, Kind: obs.KDepViolation,
				Addr: init.Lo, Addr2: final.Lo})
		}
	}
	p.graduate(ready, LoadStall)
	info.Ready = ready
	return info
}

// Store feeds one store. drain performs the timed cache write given the
// cycle the store leaves the store buffer; it runs after graduation.
// Returns the cycle the drain completes.
func (p *Pipeline) Store(init, final Range, drain func(start int64) int64) int64 {
	d := p.dispatch()
	p.Stats.Instructions++
	p.Stats.Stores++
	p.pruneStores(d)

	ready := d + 1 // data enters the store queue
	// The store cannot graduate while the store buffer is full; only
	// that backpressure (store misses draining slowly) is charged as
	// the paper's "store stall" — the one-cycle completion itself is
	// ordinary pipelining.
	class := InstStall
	if p.sbCount == p.cfg.StoreBuffer {
		oldest := p.sb[p.sbHead]
		if oldest > ready {
			ready = oldest
			class = StoreStall
		}
		p.sbHead++
		if p.sbHead == p.cfg.StoreBuffer {
			p.sbHead = 0
		}
		p.sbCount--
	}
	g := p.graduate(ready, class)
	done := drain(g)
	slot := p.sbHead + p.sbCount
	if slot >= p.cfg.StoreBuffer {
		slot -= p.cfg.StoreBuffer
	}
	p.sb[slot] = done
	p.sbCount++

	p.stores = append(p.stores, inflightStore{init: init, final: final, gradTime: g})
	return done
}

// Prefetch feeds one prefetch instruction; issue runs once the address
// operand is available (minIssue, from pointer provenance) and performs
// the non-blocking fills. Prefetches never stall graduation.
func (p *Pipeline) Prefetch(minIssue int64, issue func(at int64)) {
	d := p.dispatch()
	p.Stats.Instructions++
	at := d
	if minIssue > at {
		at = minIssue
	}
	issue(at)
	p.graduate(d+1, InstStall)
}

// pruneStores drops dependence-tracking entries that have graduated by
// cycle t. Entries are appended in graduation-time order, so the prefix
// is removable.
func (p *Pipeline) pruneStores(t int64) {
	i := 0
	for i < len(p.stores) && p.stores[i].gradTime <= t {
		i++
	}
	if i > 0 {
		p.stores = p.stores[:copy(p.stores, p.stores[i:])]
	}
}

// Now returns the current graduation cycle (monotone during a run).
func (p *Pipeline) Now() int64 { return p.gradCycle }

// DispatchFloor returns a monotone lower bound on the dispatch cycle of
// every future instruction: dispatch times only move forward, so any
// operand-ready constraint (Load/Prefetch minIssue) at or below this
// value can never delay anything again. The machine layer uses this to
// evict dead pointer-provenance entries without perturbing timing.
func (p *Pipeline) DispatchFloor() int64 { return p.dispCycle }

// Finalize closes the run: the last partially used graduation cycle is
// padded into inst stall so busy+stalls exactly partitions width×cycles.
func (p *Pipeline) Finalize() {
	if p.finalized {
		return
	}
	p.finalized = true
	if p.gradUsed > 0 {
		p.Stats.Slots[InstStall] += uint64(p.cfg.Width - p.gradUsed)
		p.gradCycle++
		p.gradUsed = 0
	}
	p.Stats.Cycles = p.gradCycle
}
