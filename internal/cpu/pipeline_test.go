package cpu

import (
	"testing"
	"testing/quick"

	"memfwd/internal/quickseed"
)

func fixedLat(lat int64) func(int64) int64 {
	return func(issue int64) int64 { return issue + lat }
}

func r(lo, n uint64) Range { return Range{Lo: lo, Hi: lo + n} }

func TestRangeOverlaps(t *testing.T) {
	cases := []struct {
		a, b Range
		want bool
	}{
		{r(0, 8), r(8, 8), false},
		{r(0, 8), r(7, 1), true},
		{r(16, 4), r(0, 32), true},
		{r(4, 4), r(4, 4), true},
		{r(0, 4), r(4, 4), false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v %v", c.a, c.b)
		}
	}
}

func TestPlainOpsGraduateAtFullWidth(t *testing.T) {
	p := New(Config{Width: 4})
	const n = 4000
	for i := 0; i < n; i++ {
		p.Op(1)
	}
	p.Finalize()
	// n ops at width 4 => ~n/4 cycles, nearly all slots busy.
	if p.Stats.Cycles > n/4+4 {
		t.Fatalf("cycles = %d, want about %d", p.Stats.Cycles, n/4)
	}
	if p.Stats.Slots[Busy] != n {
		t.Fatalf("busy slots = %d, want %d", p.Stats.Slots[Busy], n)
	}
}

func TestSlotAccountingPartitionsAllSlots(t *testing.T) {
	p := New(Config{Width: 4})
	for i := 0; i < 100; i++ {
		p.Op(1)
		if i%10 == 0 {
			p.Load(r(uint64(i)*64, 8), r(uint64(i)*64, 8), 0, fixedLat(50))
		}
		if i%7 == 0 {
			p.Store(r(uint64(i)*128, 8), r(uint64(i)*128, 8), fixedLat(30))
		}
	}
	p.Finalize()
	want := uint64(p.Stats.Cycles) * 4
	if got := p.Stats.TotalSlots(); got != want {
		t.Fatalf("slots %d != width*cycles %d", got, want)
	}
}

func TestLoadMissStallsChargedToLoadStall(t *testing.T) {
	p := New(Config{Width: 4})
	for i := 0; i < 16; i++ {
		p.Op(1)
	}
	p.Load(r(0, 8), r(0, 8), 0, fixedLat(200))
	p.Finalize()
	if p.Stats.Slots[LoadStall] == 0 {
		t.Fatal("expected load stall slots")
	}
	if p.Stats.Slots[LoadStall] < 100 {
		t.Fatalf("load stall %d too small for a 200-cycle miss", p.Stats.Slots[LoadStall])
	}
}

func TestROBLimitsOverlap(t *testing.T) {
	// With a tiny ROB, a long-latency load blocks dispatch of
	// followers, serializing misses; with a large ROB the misses
	// overlap and total cycles shrink.
	run := func(rob int) int64 {
		p := New(Config{Width: 4, ROB: rob})
		for i := 0; i < 32; i++ {
			p.Load(r(uint64(i)*64, 8), r(uint64(i)*64, 8), 0, fixedLat(100))
			for j := 0; j < 3; j++ {
				p.Op(1)
			}
		}
		p.Finalize()
		return p.Stats.Cycles
	}
	small, large := run(4), run(128)
	if large >= small {
		t.Fatalf("ROB=128 (%d cycles) should beat ROB=4 (%d cycles)", large, small)
	}
}

func TestStoreBufferFullCausesStoreStall(t *testing.T) {
	p := New(Config{Width: 4, StoreBuffer: 2})
	for i := 0; i < 64; i++ {
		p.Store(r(uint64(i)*64, 8), r(uint64(i)*64, 8), fixedLat(100))
	}
	p.Finalize()
	if p.Stats.Slots[StoreStall] == 0 {
		t.Fatal("expected store stalls with slow drains and a tiny buffer")
	}
}

func TestStoreBufferAbsorbsFastDrains(t *testing.T) {
	p := New(Config{Width: 4, StoreBuffer: 16})
	for i := 0; i < 64; i++ {
		p.Store(r(uint64(i)*64, 8), r(uint64(i)*64, 8), fixedLat(1))
		p.Op(1)
		p.Op(1)
		p.Op(1)
	}
	p.Finalize()
	if p.Stats.Slots[StoreStall] != 0 {
		t.Fatalf("store stalls = %d, want 0 with fast drains", p.Stats.Slots[StoreStall])
	}
}

func TestDependenceViolationDetected(t *testing.T) {
	p := New(Config{Width: 4, DepPenalty: 16})
	// Store whose final address (0x9000) differs from its initial
	// address (0x100) — i.e. the stored-to object was relocated.
	p.Store(r(0x100, 8), r(0x9000, 8), fixedLat(100))
	// Load with a different initial address but the same final
	// address: the classic misspeculation case of Section 3.2.
	info := p.Load(r(0x200, 8), r(0x9000, 8), 0, fixedLat(2))
	p.Finalize()
	if !info.Violated {
		t.Fatal("violation not flagged")
	}
	if p.Stats.DepViolations != 1 {
		t.Fatalf("DepViolations = %d", p.Stats.DepViolations)
	}
	if info.Ready < info.Issue+16 {
		t.Fatalf("penalty not applied: issue %d ready %d", info.Issue, info.Ready)
	}
}

func TestMatchingInitialAddressesBypassNotViolation(t *testing.T) {
	p := New(Config{Width: 4})
	p.Store(r(0x100, 8), r(0x9000, 8), fixedLat(100))
	info := p.Load(r(0x100, 8), r(0x9000, 8), 0, fixedLat(50))
	p.Finalize()
	if info.Violated {
		t.Fatal("matching initial addresses must not violate")
	}
	if !info.Bypassed || p.Stats.DepBypasses != 1 {
		t.Fatalf("expected store-to-load bypass: %+v", info)
	}
	if info.Ready != info.Issue+1 {
		t.Fatalf("bypass should satisfy load quickly: %+v", info)
	}
}

func TestNoViolationWhenStoreAlreadyGraduated(t *testing.T) {
	p := New(Config{Width: 4, DepPenalty: 16})
	p.Store(r(0x100, 8), r(0x9000, 8), fixedLat(1))
	// Separate the store and load by far more than the pipeline depth.
	for i := 0; i < 1000; i++ {
		p.Op(1)
	}
	info := p.Load(r(0x200, 8), r(0x9000, 8), 0, fixedLat(2))
	p.Finalize()
	if info.Violated {
		t.Fatal("store long graduated; no speculation in flight")
	}
	if p.Stats.DepViolations != 0 {
		t.Fatalf("DepViolations = %d", p.Stats.DepViolations)
	}
}

func TestDisjointFinalAddressesNoViolation(t *testing.T) {
	p := New(Config{Width: 4})
	p.Store(r(0x100, 8), r(0x9000, 8), fixedLat(100))
	info := p.Load(r(0x300, 8), r(0xA000, 8), 0, fixedLat(2))
	p.Finalize()
	if info.Violated || info.Bypassed {
		t.Fatalf("independent references flagged: %+v", info)
	}
}

func TestPrefetchDoesNotStall(t *testing.T) {
	p := New(Config{Width: 4})
	issued := false
	p.Prefetch(0, func(at int64) { issued = true })
	p.Finalize()
	if !issued {
		t.Fatal("prefetch issue function not called")
	}
	if p.Stats.Slots[LoadStall]+p.Stats.Slots[StoreStall] != 0 {
		t.Fatal("prefetch charged memory stalls")
	}
}

func TestInstStallFromMultiCycleOps(t *testing.T) {
	p := New(Config{Width: 4})
	for i := 0; i < 400; i++ {
		if i%8 == 0 {
			p.Op(3)
		} else {
			p.Op(1)
		}
	}
	p.Finalize()
	if p.Stats.Slots[InstStall] == 0 {
		t.Fatal("multi-cycle ops should produce inst stall")
	}
}

func TestCyclesMonotoneInLatency(t *testing.T) {
	run := func(lat int64) int64 {
		p := New(Config{Width: 4})
		for i := 0; i < 200; i++ {
			p.Load(r(uint64(i)*64, 8), r(uint64(i)*64, 8), 0, fixedLat(lat))
			p.Op(1)
		}
		p.Finalize()
		return p.Stats.Cycles
	}
	if !(run(1) <= run(10) && run(10) <= run(100)) {
		t.Fatal("cycles not monotone in load latency")
	}
}

// Property: for any mix of ops/loads/stores with bounded latencies, the
// slot partition invariant holds and cycle count is deterministic.
func TestPipelineInvariantProperty(t *testing.T) {
	prop := func(mix []uint8) bool {
		build := func() *Pipeline {
			p := New(Config{Width: 4, ROB: 32, StoreBuffer: 4})
			for i, m := range mix {
				a := uint64(i) * 16
				switch m % 4 {
				case 0, 1:
					p.Op(int64(m%3) + 1)
				case 2:
					p.Load(r(a, 8), r(a, 8), 0, fixedLat(int64(m%100)+1))
				case 3:
					p.Store(r(a, 8), r(a, 8), fixedLat(int64(m%60)+1))
				}
			}
			p.Finalize()
			return p
		}
		p1, p2 := build(), build()
		if p1.Stats.Cycles != p2.Stats.Cycles {
			return false
		}
		return p1.Stats.TotalSlots() == uint64(p1.Stats.Cycles)*4
	}
	if err := quick.Check(prop, quickseed.Config(t, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	p := New(Config{})
	p.Op(1)
	p.Finalize()
	c := p.Stats.Cycles
	p.Finalize()
	if p.Stats.Cycles != c {
		t.Fatal("Finalize not idempotent")
	}
}

func TestBubbleStallsDispatch(t *testing.T) {
	// A front-end bubble delays everything after it; with only plain
	// ops, the lost cycles surface as non-busy slots.
	run := func(bubbles bool) int64 {
		p := New(Config{Width: 4})
		for i := 0; i < 400; i++ {
			p.Op(1)
			if bubbles && i%40 == 0 {
				p.Bubble(10)
			}
		}
		p.Finalize()
		return p.Stats.Cycles
	}
	plain, bubbled := run(false), run(true)
	if bubbled < plain+80 {
		t.Fatalf("bubbles added too little: %d vs %d", bubbled, plain)
	}
}

func TestBubbleNonPositiveIsNoop(t *testing.T) {
	p := New(Config{Width: 4})
	p.Op(1)
	p.Bubble(0)
	p.Bubble(-5)
	p.Op(1)
	p.Finalize()
	if p.Stats.Cycles > 3 {
		t.Fatalf("no-op bubble cost cycles: %d", p.Stats.Cycles)
	}
}

func TestNowAdvances(t *testing.T) {
	p := New(Config{Width: 4})
	before := p.Now()
	for i := 0; i < 100; i++ {
		p.Op(1)
	}
	if p.Now() <= before {
		t.Fatal("Now did not advance")
	}
}
