package cpu

import "fmt"

// PipelineSnapshot is an opaque deep copy of a Pipeline's timing state:
// dispatch/graduation cursors, the ROB graduation ring, the store
// buffer, the in-flight store window for dependence checking, and the
// accumulated Stats. Restoring it onto a Pipeline built with the same
// Config reproduces cycle-exact behaviour from the capture point
// (DESIGN.md §10).
type PipelineSnapshot struct {
	cfg       Config
	dispCycle int64
	dispUsed  int
	gradCycle int64
	gradUsed  int
	robGrad   []int64
	robPos    int
	robSeen   uint64
	sb        []int64
	sbHead    int
	sbCount   int
	stores    []inflightStore
	finalized bool
	stats     Stats
}

// Snapshot captures a deep copy of the pipeline's timing state.
func (p *Pipeline) Snapshot() *PipelineSnapshot {
	return &PipelineSnapshot{
		cfg:       p.cfg,
		dispCycle: p.dispCycle,
		dispUsed:  p.dispUsed,
		gradCycle: p.gradCycle,
		gradUsed:  p.gradUsed,
		robGrad:   append([]int64(nil), p.robGrad...),
		robPos:    p.robPos,
		robSeen:   p.robSeen,
		sb:        append([]int64(nil), p.sb...),
		sbHead:    p.sbHead,
		sbCount:   p.sbCount,
		stores:    append([]inflightStore(nil), p.stores...),
		finalized: p.finalized,
		stats:     p.Stats,
	}
}

// Restore installs a snapshot onto p. The pipeline's Config must equal
// the snapshot's (the ROB ring and store buffer are sized by it); a
// mismatch is a session-routing bug and is reported as an error. The
// tracer binding is wiring of the target and is preserved.
func (p *Pipeline) Restore(s *PipelineSnapshot) error {
	if p.cfg != s.cfg {
		return fmt.Errorf("cpu: pipeline restore config mismatch: have %+v, snapshot %+v", p.cfg, s.cfg)
	}
	p.dispCycle = s.dispCycle
	p.dispUsed = s.dispUsed
	p.gradCycle = s.gradCycle
	p.gradUsed = s.gradUsed
	p.robGrad = append(p.robGrad[:0], s.robGrad...)
	p.robPos = s.robPos
	p.robSeen = s.robSeen
	p.sb = append(p.sb[:0], s.sb...)
	p.sbHead = s.sbHead
	p.sbCount = s.sbCount
	p.stores = append(p.stores[:0], s.stores...)
	p.finalized = s.finalized
	p.Stats = s.stats
	return nil
}
