package cpu

// Binary codec for the pipeline snapshot, built on internal/wire.
// Decode validates configuration and every ring-buffer index against
// the invariants New establishes, so corrupt input is an error from
// the decoder — never a panic or out-of-range index downstream.

import (
	"memfwd/internal/wire"
)

const storeEncBytes = 8*4 + 8 // two Ranges + gradTime

// EncodeStats appends a cpu.Stats encoding to w. Exported because
// sim's aggregate Stats embeds these counters.
func EncodeStats(w *wire.Writer, s *Stats) {
	w.I64(s.Cycles)
	for _, v := range s.Slots {
		w.U64(v)
	}
	w.U64(s.Instructions)
	w.U64(s.Loads)
	w.U64(s.Stores)
	w.U64(s.DepViolations)
	w.U64(s.DepBypasses)
}

// DecodeStats reads a Stats encoded by EncodeStats.
func DecodeStats(r *wire.Reader) Stats {
	var s Stats
	s.Cycles = r.I64()
	for i := range s.Slots {
		s.Slots[i] = r.U64()
	}
	s.Instructions = r.U64()
	s.Loads = r.U64()
	s.Stores = r.U64()
	s.DepViolations = r.U64()
	s.DepBypasses = r.U64()
	return s
}

// EncodeWire appends the pipeline snapshot's encoding to w.
func (s *PipelineSnapshot) EncodeWire(w *wire.Writer) {
	w.Int(s.cfg.Width)
	w.Int(s.cfg.ROB)
	w.Int(s.cfg.StoreBuffer)
	w.I64(s.cfg.DepPenalty)
	w.I64(s.dispCycle)
	w.Int(s.dispUsed)
	w.I64(s.gradCycle)
	w.Int(s.gradUsed)
	w.U32(uint32(len(s.robGrad)))
	for _, v := range s.robGrad {
		w.I64(v)
	}
	w.Int(s.robPos)
	w.U64(s.robSeen)
	w.U32(uint32(len(s.sb)))
	for _, v := range s.sb {
		w.I64(v)
	}
	w.Int(s.sbHead)
	w.Int(s.sbCount)
	w.U32(uint32(len(s.stores)))
	for _, st := range s.stores {
		w.U64(st.init.Lo)
		w.U64(st.init.Hi)
		w.U64(st.final.Lo)
		w.U64(st.final.Hi)
		w.I64(st.gradTime)
	}
	w.Bool(s.finalized)
	EncodeStats(w, &s.stats)
}

// DecodePipelineSnapshot reads a snapshot encoded by EncodeWire.
// Errors latch on r.
func DecodePipelineSnapshot(r *wire.Reader) *PipelineSnapshot {
	s := &PipelineSnapshot{}
	s.cfg.Width = r.Int()
	s.cfg.ROB = r.Int()
	s.cfg.StoreBuffer = r.Int()
	s.cfg.DepPenalty = r.I64()
	if r.Err() != nil {
		return s
	}
	if s.cfg.Width <= 0 || s.cfg.ROB <= 0 || s.cfg.StoreBuffer <= 0 {
		r.Failf("cpu: config width=%d rob=%d sb=%d invalid", s.cfg.Width, s.cfg.ROB, s.cfg.StoreBuffer)
		return s
	}
	s.dispCycle = r.I64()
	s.dispUsed = r.Int()
	s.gradCycle = r.I64()
	s.gradUsed = r.Int()

	nROB := r.Count(8)
	if r.Err() == nil && nROB != s.cfg.ROB {
		r.Failf("cpu: robGrad has %d entries, config says %d", nROB, s.cfg.ROB)
		return s
	}
	s.robGrad = make([]int64, nROB)
	for i := range s.robGrad {
		s.robGrad[i] = r.I64()
	}
	s.robPos = r.Int()
	if r.Err() == nil && (s.robPos < 0 || s.robPos >= s.cfg.ROB) {
		r.Failf("cpu: robPos %d outside ROB of %d", s.robPos, s.cfg.ROB)
		return s
	}
	s.robSeen = r.U64()

	nSB := r.Count(8)
	if r.Err() == nil && nSB != s.cfg.StoreBuffer {
		r.Failf("cpu: store-buffer ring has %d entries, config says %d", nSB, s.cfg.StoreBuffer)
		return s
	}
	s.sb = make([]int64, nSB)
	for i := range s.sb {
		s.sb[i] = r.I64()
	}
	s.sbHead = r.Int()
	s.sbCount = r.Int()
	if r.Err() == nil && (s.sbHead < 0 || s.sbHead >= s.cfg.StoreBuffer ||
		s.sbCount < 0 || s.sbCount > s.cfg.StoreBuffer) {
		r.Failf("cpu: store-buffer cursor head=%d count=%d outside buffer of %d",
			s.sbHead, s.sbCount, s.cfg.StoreBuffer)
		return s
	}

	nStores := r.Count(storeEncBytes)
	s.stores = make([]inflightStore, nStores)
	for i := range s.stores {
		s.stores[i].init.Lo = r.U64()
		s.stores[i].init.Hi = r.U64()
		s.stores[i].final.Lo = r.U64()
		s.stores[i].final.Hi = r.U64()
		s.stores[i].gradTime = r.I64()
	}
	s.finalized = r.Bool()
	s.stats = DecodeStats(r)
	return s
}
