package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Title", "a", "bb", "ccc")
	tb.Add("1", "2", "3")
	tb.Add("1000", "x", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line %q", lines[0])
	}
	if lines[1] != "=====" {
		t.Fatalf("underline %q", lines[1])
	}
	// Header and rows align: every data line has the same column starts.
	if !strings.HasPrefix(lines[2], "a     bb") {
		t.Fatalf("header misaligned: %q", lines[2])
	}
	if !strings.HasPrefix(lines[4], "1     2") {
		t.Fatalf("row misaligned: %q", lines[4])
	}
	if !strings.HasPrefix(lines[5], "1000  x") {
		t.Fatalf("wide row misaligned: %q", lines[5])
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := New("", "x")
	tb.Add("1")
	if strings.Contains(tb.String(), "=") {
		t.Fatal("untitled table rendered an underline")
	}
}

func TestAddf(t *testing.T) {
	tb := New("t", "a", "b")
	tb.Addf(42, true)
	if tb.Rows[0][0] != "42" || tb.Rows[0][1] != "true" {
		t.Fatalf("rows: %v", tb.Rows)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 2); got != "1.50" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "-" {
		t.Fatalf("Ratio(,0) = %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.077); got != "7.7%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestKBAndMB(t *testing.T) {
	if got := KB(1536); got != "1.5KB" {
		t.Fatalf("KB = %q", got)
	}
	if got := MB(3 * 1024 * 1024 / 2); got != "1.50MB" {
		t.Fatalf("MB = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := New("Title is not emitted", "instr", "phase", "rate")
	tb.Add("1000", "build", "0.25")
	tb.Add("2000", "sim", "0.50")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Title") {
		t.Fatal("CSV must not contain the table title")
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output does not re-parse as CSV: %v", err)
	}
	if len(recs) != 3 || recs[0][0] != "instr" || recs[2][1] != "sim" {
		t.Fatalf("records wrong: %v", recs)
	}
}

func TestWriteCSVQuotesSpecialCells(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add(`comma,and"quote`, "line\nbreak")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("quoted output does not re-parse: %v", err)
	}
	if recs[1][0] != `comma,and"quote` || recs[1][1] != "line\nbreak" {
		t.Fatalf("round-trip lost data: %v", recs)
	}
}

func TestRaggedRowsDoNotPanic(t *testing.T) {
	tb := New("t", "a", "b", "c")
	tb.Add("only-one")
	tb.Add("1", "2", "3", "4-extra-ignored-width")
	_ = tb.String()
}
