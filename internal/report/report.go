// Package report renders the experiment tables and series the
// benchmark harness regenerates from the paper's evaluation section.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells rendered with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New creates a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row, applying fmt.Sprint to each value.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// WriteCSV renders the table as CSV: one header record then one record
// per row, with RFC 4180 quoting. The title is not emitted, so the
// output feeds straight into spreadsheet and plotting tools; the
// sampler time-series uses this as its machine-readable form.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Ratio formats x/base to two decimals ("1.37"); base 0 gives "-".
func Ratio(x, base float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", x/base)
}

// Pct formats a fraction as a percentage ("7.7%").
func Pct(x float64) string {
	return fmt.Sprintf("%.1f%%", 100*x)
}

// KB formats a byte count in KB.
func KB(n uint64) string {
	return fmt.Sprintf("%.1fKB", float64(n)/1024)
}

// MB formats a byte count in MB.
func MB(n uint64) string {
	return fmt.Sprintf("%.2fMB", float64(n)/(1024*1024))
}

// WriteJSON is the one JSON encoder every harness output goes through:
// two-space-indented encoding of runs, stats, series, and telemetry
// snapshots, shared by cmd/figures -json, cmd/memfwd-sim -json, and the
// HTTP telemetry plane so their encodings can never drift apart.
// (memfwd.WriteJSON delegates here.)
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
