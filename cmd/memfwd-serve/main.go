// Command memfwd-serve is the long-running simulation session server:
// a pool of simulated machines sharded across workers, driven by many
// concurrent clients over HTTP+JSON. Sessions can run a registered
// benchmark application in stepped guest-operation quanta (optionally
// under the chaos relocation adversary), or expose the raw guest
// operations directly; any session can be snapshotted, restored, and
// migrated between shards mid-run.
//
// Usage:
//
//	memfwd-serve -addr 127.0.0.1:8377 -shards 4
//	memfwd-serve -store-dir /var/lib/memfwd -recover
//	memfwd-serve -selftest -selftest-short
//
// With -store-dir every session is persisted (atomic snapshot files +
// per-session write-ahead logs) and -recover re-materializes them
// after a crash; see DESIGN.md §13 for the durability model. The API
// index is served at /; see DESIGN.md §10 for the full protocol, the
// shard-ownership model, and the determinism contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memfwd"
	"memfwd/internal/obs"
	"memfwd/internal/serve"
	"memfwd/internal/sim"
)

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "memfwd-serve: "+format+"\n", args...)
}

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:8377", "listen address (\":0\" picks a free port)")
		shards = flag.Int("shards", 4, "worker shards sessions are distributed over")
		line   = flag.Int("line", 0, "cache line size for session machines (0 = simulator default)")

		telemetryAddr = flag.String("telemetry", "", "also serve the observability telemetry plane on this address, publishing the session server's gauges")

		storeDir = flag.String("store-dir", "", "persist every session to this directory (crash-safe snapshots + write-ahead logs); empty serves memory-only")
		recover_ = flag.Bool("recover", false, "before serving, scan -store-dir and re-materialize every recoverable session and snapshot (requires -store-dir; the server must be configured like the one that wrote the store)")

		selftest         = flag.Bool("selftest", false, "run the load-test harness against an in-process server and exit")
		selftestShort    = flag.Bool("selftest-short", false, "shrink the -selftest defaults for a quick smoke run (200 sessions, 16 workers, 80 ops)")
		selftestSessions = flag.Int("selftest-sessions", 0, "concurrent synthetic sessions for -selftest (0 = harness default)")
		selftestWorkers  = flag.Int("selftest-workers", 0, "HTTP driver goroutines for -selftest (0 = harness default)")
		selftestOps      = flag.Int("selftest-ops", 0, "script length per -selftest session (0 = harness default)")
		selftestSeed     = flag.Int64("selftest-seed", 1, "base seed for -selftest scripts")
	)
	flag.Parse()

	simCfg := sim.Config{LineSize: *line}
	if *selftest {
		cfg := serve.SelftestConfig{
			Sessions: *selftestSessions,
			Shards:   *shards,
			Workers:  *selftestWorkers,
			Ops:      *selftestOps,
			Seed:     *selftestSeed,
			Sim:      simCfg,
			Short:    *selftestShort,
		}
		if err := serve.Selftest(cfg, logf); err != nil {
			logf("selftest FAILED: %v", err)
			os.Exit(1)
		}
		return
	}

	svCfg := serve.Config{Shards: *shards, Sim: simCfg}
	if *storeDir != "" {
		st, err := serve.OpenStore(serve.StoreConfig{Dir: *storeDir})
		if err != nil {
			logf("%v", err)
			os.Exit(1)
		}
		svCfg.Store = st
	} else if *recover_ {
		logf("-recover requires -store-dir")
		os.Exit(1)
	}
	sv := serve.New(svCfg)
	if *recover_ {
		rep, err := sv.Recover()
		if err != nil {
			logf("recover: %v", err)
			os.Exit(1)
		}
		logf("recovered %d sessions and %d snapshots (%d ops + %d grants replayed, %d tail rollbacks, %d scavenges, %d damaged)",
			rep.Sessions, rep.Snapshots, rep.ReplayedOps, rep.ReplayedGrants,
			rep.TailRollbacks, rep.Scavenges, rep.Damaged)
	}
	if err := sv.Start(*addr); err != nil {
		logf("%v", err)
		os.Exit(1)
	}
	logf("session server on http://%s (%d shards)", sv.Addr(), *shards)

	if *telemetryAddr != "" {
		plane, err := memfwd.BootTelemetry(*telemetryAddr, 0, logf)
		if err != nil {
			logf("%v", err)
			os.Exit(1)
		}
		defer plane.Shutdown() //nolint:errcheck // best-effort teardown on exit
		srv := plane.Server()
		plane.StartPublisher(time.Second, func() {
			snap := sv.MetricsSnapshot()
			vals := make([]obs.MetricValue, 0, len(snap))
			for name, v := range snap {
				vals = append(vals, obs.MetricValue{Name: name, Value: v})
			}
			srv.PublishMetrics(vals)
		})
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logf("shutting down")
	if err := sv.Close(); err != nil {
		logf("close: %v", err)
		os.Exit(1)
	}
}
