// Command memfwd-serve is the long-running simulation session server:
// a pool of simulated machines sharded across workers, driven by many
// concurrent clients over HTTP+JSON. Sessions can run a registered
// benchmark application in stepped guest-operation quanta (optionally
// under the chaos relocation adversary), or expose the raw guest
// operations directly; any session can be snapshotted, restored, and
// migrated between shards mid-run.
//
// Usage:
//
//	memfwd-serve -addr 127.0.0.1:8377 -shards 4
//	memfwd-serve -selftest -selftest-sessions 1000
//
// The API index is served at /; see DESIGN.md §10 for the full
// protocol, the shard-ownership model, and the determinism contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memfwd"
	"memfwd/internal/obs"
	"memfwd/internal/serve"
	"memfwd/internal/sim"
)

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "memfwd-serve: "+format+"\n", args...)
}

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:8377", "listen address (\":0\" picks a free port)")
		shards = flag.Int("shards", 4, "worker shards sessions are distributed over")
		line   = flag.Int("line", 0, "cache line size for session machines (0 = simulator default)")

		telemetryAddr = flag.String("telemetry", "", "also serve the observability telemetry plane on this address, publishing the session server's gauges")

		selftest         = flag.Bool("selftest", false, "run the load-test harness against an in-process server and exit")
		selftestSessions = flag.Int("selftest-sessions", 1000, "concurrent synthetic sessions for -selftest")
		selftestWorkers  = flag.Int("selftest-workers", 32, "HTTP driver goroutines for -selftest")
		selftestOps      = flag.Int("selftest-ops", 160, "script length per -selftest session")
		selftestSeed     = flag.Int64("selftest-seed", 1, "base seed for -selftest scripts")
	)
	flag.Parse()

	simCfg := sim.Config{LineSize: *line}
	if *selftest {
		cfg := serve.SelftestConfig{
			Sessions: *selftestSessions,
			Shards:   *shards,
			Workers:  *selftestWorkers,
			Ops:      *selftestOps,
			Seed:     *selftestSeed,
			Sim:      simCfg,
		}
		if err := serve.Selftest(cfg, logf); err != nil {
			logf("selftest FAILED: %v", err)
			os.Exit(1)
		}
		return
	}

	sv := serve.New(serve.Config{Shards: *shards, Sim: simCfg})
	if err := sv.Start(*addr); err != nil {
		logf("%v", err)
		os.Exit(1)
	}
	logf("session server on http://%s (%d shards)", sv.Addr(), *shards)

	if *telemetryAddr != "" {
		plane, err := memfwd.BootTelemetry(*telemetryAddr, 0, logf)
		if err != nil {
			logf("%v", err)
			os.Exit(1)
		}
		defer plane.Shutdown() //nolint:errcheck // best-effort teardown on exit
		srv := plane.Server()
		plane.StartPublisher(time.Second, func() {
			snap := sv.MetricsSnapshot()
			vals := make([]obs.MetricValue, 0, len(snap))
			for name, v := range snap {
				vals = append(vals, obs.MetricValue{Name: name, Value: v})
			}
			srv.PublishMetrics(vals)
		})
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logf("shutting down")
	if err := sv.Close(); err != nil {
		logf("close: %v", err)
		os.Exit(1)
	}
}
