// Command benchdiff compares `go test -bench` output against a
// checked-in baseline and exits non-zero on regressions.
//
// Record a baseline:
//
//	go test -run '^$' -bench 'Figure5' -benchmem . | benchdiff -record -baseline BENCH_fig5.json
//
// Check a fresh run:
//
//	go test -run '^$' -bench 'Figure5' -benchmem . | benchdiff -baseline BENCH_fig5.json -threshold 1.25
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"memfwd/internal/benchdiff"
)

func main() {
	var (
		baseline   = flag.String("baseline", "BENCH_fig5.json", "baseline JSON file")
		threshold  = flag.Float64("threshold", 1.25, "allowed growth ratio before a metric counts as a regression (>= 1)")
		record     = flag.Bool("record", false, "write a new baseline from the input instead of comparing")
		input      = flag.String("input", "-", "bench output to read ('-' for stdin)")
		checkTime  = flag.Bool("check-time", false, "also compare ns/op (not portable across machines)")
		absSlackNs = flag.Float64("abs-slack-ns", 1000, "with -check-time, ignore ns/op deltas below this floor")
		failMiss   = flag.Bool("fail-missing", false, "exit non-zero if a baseline benchmark is absent from the run")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := benchdiff.Parse(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}

	if *record {
		f, err := os.Create(*baseline)
		if err != nil {
			fatal(err)
		}
		if err := benchdiff.NewBaseline(results).WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: recorded %d benchmarks to %s\n", len(results), *baseline)
		return
	}

	bf, err := os.Open(*baseline)
	if err != nil {
		fatal(err)
	}
	base, err := benchdiff.ReadBaseline(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	deltas, missing, err := benchdiff.Compare(base, results, benchdiff.Config{
		Threshold:  *threshold,
		CheckTime:  *checkTime,
		AbsSlackNs: *absSlackNs,
	})
	if err != nil {
		fatal(err)
	}
	regressions := benchdiff.Report(os.Stdout, deltas, missing)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) past %.2fx threshold\n", regressions, *threshold)
		os.Exit(1)
	}
	if *failMiss && len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d baseline benchmark(s) missing from run\n", len(missing))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) within %.2fx of baseline\n", len(deltas), *threshold)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
