// Command memfwd-sim runs one benchmark application on the simulated
// machine and prints the full measurement record.
//
// Usage:
//
//	memfwd-sim -app health -line 64 -opt -prefetch -block 4 -seed 9
//	memfwd-sim -app health -lines 32,64,128 -opt -jobs 4 -json
//
// Observability:
//
//	memfwd-sim -app health -trace t.ndjson -perfetto t.json \
//	           -sample-every 10000 -sample-csv series.csv -metrics -json
//
// -trace streams every simulator event (allocations, relocations,
// forwarded references, traps, cache misses, dependence violations,
// phases) as NDJSON; -perfetto writes the same events as a Chrome
// trace_event JSON array for chrome://tracing or ui.perfetto.dev;
// -sample-every turns the run into a time-series; -json emits the final
// record in the same encoding as cmd/figures -json.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"memfwd"
	"memfwd/internal/apps/app"
	"memfwd/internal/exp"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/pprofutil"
	"memfwd/internal/sched"
	"memfwd/internal/sim"
	"memfwd/internal/tier"
)

func main() {
	var (
		appName  = flag.String("app", "health", "application name (see -list)")
		list     = flag.Bool("list", false, "list applications and exit")
		line     = flag.Int("line", 32, "cache line size in bytes")
		optOn    = flag.Bool("opt", false, "enable the locality optimization")
		prefetch = flag.Bool("prefetch", false, "enable software prefetching")
		block    = flag.Int("block", 1, "prefetch block size in lines")
		seed     = flag.Int64("seed", 9, "workload seed")
		scale    = flag.Int("scale", 1, "workload scale factor")
		perfect  = flag.Bool("perfect", false, "perfect forwarding (Figure 10 Perf)")
		profile  = flag.Bool("profile", false, "attach the Section 3.2 forwarding profiler and print its report")

		tracePath    = flag.String("trace", "", "write NDJSON trace events to this file")
		perfettoPath = flag.String("perfetto", "", "write a Chrome/Perfetto trace_event JSON trace to this file")
		sampleEvery  = flag.Uint64("sample-every", 0, "sample a time-series point every N instructions")
		sampleCSV    = flag.String("sample-csv", "", "also write the time-series as CSV to this file")
		metrics      = flag.Bool("metrics", false, "print the metrics registry after the run")
		asJSON       = flag.Bool("json", false, "emit the final record as JSON (cmd/figures -json encoding)")

		httpAddr    = flag.String("http", "", "serve the live telemetry plane on this address during the run (127.0.0.1:0 picks a port; /metrics, /samples, /heatmap, /spans, /events)")
		httpLinger  = flag.Duration("http-linger", 0, "keep the telemetry server up this long after the run completes")
		relocReport = flag.Bool("relocation-report", false, "record relocation spans and print the per-phase two-phase-commit cost report")
		heatTop     = flag.Int("heat", 0, "attach the per-object heat map and print the K hottest objects after the run")
		attrCSV     = flag.String("attr-csv", "", "write the trap site × object attribution as CSV to this file (implies -profile)")
		attrJSON    = flag.String("attr-json", "", "write the trap site × object attribution as JSON to this file (implies -profile)")

		lines = flag.String("lines", "", "comma-separated line sizes (e.g. 32,64,128): sweep them through the parallel experiment engine instead of one -line run")
		jobs  = flag.Int("jobs", 0, "experiment-engine worker count for -lines sweeps (0 = GOMAXPROCS); results are identical at any value")

		harts     = flag.Int("harts", 1, "hart count: harts 1..N-1 are relocator harts a deterministic seeded scheduler interleaves against the guest, racing concurrent relocations (1 = single-hart, byte-identical to previous releases)")
		schedSeed = flag.Int64("sched-seed", 0, "seed for the relocator-hart interleaving (0 = -seed; with -harts)")

		tiers        = flag.Int("tiers", 0, "partition main memory into N latency tiers and run the online adaptive migrator (0 = flat memory; the heap is the near tier, demotions and over-budget allocations go far)")
		migrateEvery = flag.Int("migrate-every", 4096, "mean guest operations between migrator wakes (with -tiers)")
		fastFrac     = flag.Float64("fast-frac", 0.25, "near-memory residency budget as a fraction of live heap bytes (with -tiers)")
		tierStatic   = flag.Bool("tier-static", false, "one-shot static placement instead of online adaptation (with -tiers)")

		faultSpec = flag.String("fault", "", "arm a deterministic fault: kind@point[:visit] (e.g. flip@relocate.copy-write); a crashed or corrupted run exits 1 with the reason")
		faultSeed = flag.Int64("fault-seed", 0, "seed for the fault corruption stream (0 = -seed)")
		timeout   = flag.Duration("timeout", 0, "per-run deadline (0 = unbounded)")
		retries   = flag.Int("retries", 0, "re-run on transient faults up to this many times")

		cpuProfile = flag.String("cpuprofile", "", "write a Go CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a Go heap profile (after GC) to this file at exit")
	)
	flag.Parse()

	stopProf, err := pprofutil.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
		os.Exit(1)
	}
	defer func() {
		stopProf()
		if err := pprofutil.WriteHeap(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
		}
	}()

	if *list {
		for _, a := range memfwd.Apps() {
			fmt.Printf("%-10s %s\n           optimization: %s\n", a.Name, a.Description, a.Optimization)
		}
		return
	}

	a, ok := memfwd.AppByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown application %q (use -list)\n", *appName)
		os.Exit(2)
	}

	if *tiers == 1 || *tiers < 0 {
		fmt.Fprintln(os.Stderr, "memfwd-sim: -tiers wants 0 (flat) or >= 2")
		os.Exit(2)
	}

	// Validate -harts here so a bad count is a clean usage error, not a
	// machine-construction panic deep in the run.
	if *harts < 1 || *harts > sim.MaxHarts {
		fmt.Fprintf(os.Stderr, "memfwd-sim: -harts wants 1..%d (got %d)\n", sim.MaxHarts, *harts)
		os.Exit(2)
	}

	if *lines != "" {
		// Sweep mode: each line size is one engine job with its own
		// machine, so per-machine observability flags do not apply
		// (-http does: the engine wires each cell to the shared plane).
		if *tracePath != "" || *perfettoPath != "" || *sampleCSV != "" || *metrics || *profile ||
			*relocReport || *heatTop > 0 || *attrCSV != "" || *attrJSON != "" || *tiers != 0 {
			fmt.Fprintln(os.Stderr, "memfwd-sim: -lines sweeps do not support -trace, -perfetto, -sample-csv, -metrics, -profile, -relocation-report, -heat, -attr-csv, -attr-json, or -tiers")
			os.Exit(2)
		}
		ls, err := parseLines(*lines)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
			os.Exit(2)
		}
		o := memfwd.Options{
			Seed: *seed, Scale: *scale, SampleEvery: *sampleEvery, Jobs: *jobs,
			JobTimeout: *timeout, Retries: *retries,
			Fault: *faultSpec, FaultSeed: *faultSeed,
			Harts: *harts, SchedSeed: *schedSeed,
		}
		if *httpAddr != "" {
			plane, err := memfwd.BootTelemetry(*httpAddr, *httpLinger, logTelemetry)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
				os.Exit(1)
			}
			// One handle owns linger + close; Shutdown is idempotent, so
			// this single deferred call can never linger twice.
			defer plane.Shutdown()
			o.Telemetry = plane.Server()
		}
		v := variantOf(*optOn, *prefetch, *perfect)
		runs, errs := memfwd.RunLines(a, ls, v, blockOf(*prefetch, *block), o)
		if *asJSON {
			if err := memfwd.WriteJSON(os.Stdout, runs); err != nil {
				fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
				os.Exit(1)
			}
		} else {
			for _, r := range runs {
				if r.Stats == nil {
					fmt.Printf("app=%s line=%dB variant=%-4s incomplete: %s\n",
						r.App, r.Line, r.Variant, r.Incomplete)
					continue
				}
				fmt.Printf("app=%s line=%dB variant=%-4s cycles=%-12d L1-load-misses=%-10d loads-forwarded=%d\n",
					r.App, r.Line, r.Variant, r.Stats.Cycles, r.Stats.L1.Misses(0), r.Stats.LoadsForwarded())
			}
		}
		if len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "memfwd-sim: %d cell(s) incomplete\n", len(errs))
			os.Exit(1)
		}
		return
	}

	var tierSpec *mem.TierConfig
	if *tiers >= 2 {
		tierSpec = mem.DefaultTierConfig(*tiers, sim.DefaultConfig().MemLatency)
	}
	mc := memfwd.MachineConfig{
		LineSize:          *line,
		PerfectForwarding: *perfect,
		Tiers:             tierSpec,
	}
	if *harts > 1 {
		mc.Harts = *harts
	}
	m := memfwd.NewMachine(mc)

	// Event tracing: one tracer can feed several sinks.
	var sinks []memfwd.TraceSink
	var files []*os.File
	openSink := func(path string, mk func(f *os.File) memfwd.TraceSink) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
			os.Exit(1)
		}
		files = append(files, f)
		sinks = append(sinks, mk(f))
	}
	if *tracePath != "" {
		openSink(*tracePath, func(f *os.File) memfwd.TraceSink { return memfwd.NewNDJSONSink(f) })
	}
	if *perfettoPath != "" {
		openSink(*perfettoPath, func(f *os.File) memfwd.TraceSink { return memfwd.NewPerfettoSink(f) })
	}
	var telSrv *memfwd.TelemetryServer
	if *httpAddr != "" {
		plane, err := memfwd.BootTelemetry(*httpAddr, *httpLinger, logTelemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
			os.Exit(1)
		}
		// The plane owns the whole lifecycle: the final publish happens
		// before this deferred Shutdown runs (defers are LIFO and the
		// publish is inline below), so the linger serves end state, and
		// a second Shutdown anywhere could never linger again.
		defer plane.Shutdown()
		telSrv = plane.Server()
		// The hub is shared infrastructure: shield it from the
		// tracer's Close so /events outlives the trace files.
		sinks = append(sinks, memfwd.NoCloseSink(telSrv.Hub()))
	}
	var tracer *memfwd.Tracer
	if len(sinks) > 0 {
		tracer = memfwd.NewTracer(memfwd.MultiSink(sinks...), 0)
		m.SetTracer(tracer)
	}

	var series *memfwd.SampleSeries
	if *sampleEvery > 0 {
		series = &memfwd.SampleSeries{Every: *sampleEvery}
		m.SetSampleEvery(*sampleEvery, series)
	}

	reg := memfwd.NewMetricsRegistry()
	m.RegisterMetrics(reg)

	var heat *memfwd.HeatMap
	if *heatTop > 0 || *attrCSV != "" || *attrJSON != "" || telSrv != nil || tierSpec != nil {
		// The migrator refuses to demote blocks the heat map does not
		// track, so with -tiers the table must cover the whole heap,
		// not just a telemetry-sized hot set.
		heatObjs := 0
		if tierSpec != nil {
			heatObjs = 1 << 16
		}
		heat = memfwd.NewHeatMap(heatObjs, 0)
		m.SetHeatMap(heat)
		heat.RegisterMetrics(reg)
	}
	var spans *memfwd.SpanTable
	if *relocReport || telSrv != nil {
		spans = memfwd.NewSpanTable(0)
		m.SetSpans(spans)
		spans.RegisterMetrics(reg)
	}

	var prof *memfwd.Profiler
	if *profile || *attrCSV != "" || *attrJSON != "" {
		prof = memfwd.AttachProfiler(m)
		prof.RegisterMetrics(reg)
		if *attrCSV != "" || *attrJSON != "" {
			prof.EnableAttribution()
		}
	}

	// The telemetry plane publishes immutable snapshots at sampler
	// cadence from the machine's own goroutine (the registry and heat
	// map are not thread-safe, so the server never reads them live).
	var pub *memfwd.SampleSeries
	publish := func() {
		telSrv.PublishMetrics(reg.Snapshot())
		telSrv.PublishHeat(heat.Snapshot(32))
		telSrv.PublishSpans(spans.Snapshot(64))
		cp := make([]memfwd.Sample, len(pub.Samples))
		copy(cp, pub.Samples)
		telSrv.PublishSamples(pub.Every, cp)
	}
	if telSrv != nil {
		pub = series
		if pub == nil {
			pub = &memfwd.SampleSeries{}
			m.SetSampleEvery(50_000, pub)
		}
		pub.OnAdd = func(memfwd.Sample) { publish() }
	}
	if *faultSpec != "" {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		inj, err := fault.NewFromSpec(fseed, *faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
			os.Exit(2)
		}
		m.SetFaultInjector(inj)
	}

	// The guest runs on the machine directly, or wrapped: with -harts,
	// the scheduling group interleaves relocator harts against the
	// guest's operations; with -tiers, the migrator daemon sits
	// outermost, so its migrations hit the group's relocation barrier
	// like any other agent's. Sharing the machine's heat map gives the
	// daemon full trap-cost and hop attribution.
	var guest app.Machine = m
	var grp *sched.Group
	if *harts > 1 {
		sseed := *schedSeed
		if sseed == 0 {
			sseed = *seed
		}
		var err error
		grp, err = sched.New(m, sched.Config{Harts: *harts, Seed: sseed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
			os.Exit(2)
		}
		guest = grp
	}
	var daemon *tier.Daemon
	if tierSpec != nil {
		daemon = tier.New(guest, tier.Config{
			Tiers:    tierSpec,
			Seed:     *seed,
			Every:    *migrateEvery,
			FastFrac: *fastFrac,
			OneShot:  *tierStatic,
			Heat:     heat,
		})
		daemon.RegisterMetrics(reg)
		guest = daemon
	}

	// The run goes through the hardened engine even as a single job, so
	// an injected crash, a hung workload, or a timeout is reported as a
	// structured reason instead of killing the process.
	var res memfwd.AppResult
	appCfg := memfwd.AppConfig{
		Opt:           *optOn,
		Prefetch:      *prefetch,
		PrefetchBlock: *block,
		Seed:          *seed,
		Scale:         *scale,
	}
	spec := exp.Spec{App: a.Name, Line: *line, Variant: string(variantOf(*optOn, *prefetch, *perfect))}
	_, jobErrs := exp.RunChecked(
		exp.Config{Jobs: 1, JobTimeout: *timeout, Retries: *retries, RetrySeed: *seed},
		[]exp.Spec{spec},
		func(int, exp.Spec) (struct{}, error) {
			res = a.Run(guest, appCfg)
			return struct{}{}, nil
		})
	if len(jobErrs) > 0 {
		fmt.Fprintf(os.Stderr, "memfwd-sim: run incomplete: %s\n", jobErrs[0].Reason())
		os.Exit(1)
	}
	if grp != nil {
		grp.Quiesce()
		grp.Close()
	}
	st := m.Finalize()
	if telSrv != nil {
		publish() // final snapshots: the lingering server serves end state
	}

	if err := tracer.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "memfwd-sim: trace:", err)
		os.Exit(1)
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
			os.Exit(1)
		}
	}

	if *sampleCSV != "" && series != nil {
		f, err := os.Create(*sampleCSV)
		if err == nil {
			err = series.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim: sample-csv:", err)
			os.Exit(1)
		}
	}

	if *attrCSV != "" {
		if err := writeFile(*attrCSV, prof.WriteAttributionCSV); err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim: attr-csv:", err)
			os.Exit(1)
		}
	}
	if *attrJSON != "" {
		if err := writeFile(*attrJSON, prof.WriteAttributionJSON); err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim: attr-json:", err)
			os.Exit(1)
		}
	}

	if *asJSON {
		run := memfwd.Run{
			App:     a.Name,
			Line:    *line,
			Variant: variantOf(*optOn, *prefetch, *perfect),
			Block:   blockOf(*prefetch, *block),
			Stats:   st,
			Result:  res,
		}
		if series != nil {
			run.Samples = series.Samples
		}
		if grp != nil {
			gs := grp.Stats()
			run.Sched = &gs
		}
		if err := memfwd.WriteJSON(os.Stdout, run); err != nil {
			fmt.Fprintln(os.Stderr, "memfwd-sim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("app=%s line=%dB opt=%v prefetch=%v(block %d) seed=%d scale=%d\n",
		a.Name, *line, *optOn, *prefetch, *block, *seed, *scale)
	fmt.Printf("checksum            %d\n", res.Checksum)
	fmt.Printf("cycles              %d\n", st.Cycles)
	fmt.Printf("instructions        %d (loads %d, stores %d)\n", st.Instructions, st.Loads, st.Stores)
	fmt.Printf("slots busy/ld/st/in %d / %d / %d / %d\n", st.Slots[0], st.Slots[1], st.Slots[2], st.Slots[3])
	fmt.Printf("L1 load misses      %d (partial %d, full %d)\n",
		st.L1.Misses(0), st.L1.PartialMisses[0], st.L1.FullMisses[0])
	fmt.Printf("L1 store misses     %d\n", st.L1.Misses(1))
	fmt.Printf("L2 misses           %d\n", st.L2.Misses(0)+st.L2.Misses(1))
	fmt.Printf("bandwidth L1<->L2   %d bytes\n", st.BytesL1L2)
	fmt.Printf("bandwidth L2<->mem  %d bytes\n", st.BytesL2Mem)
	fmt.Printf("loads forwarded     %d (%.2f%%), stores forwarded %d (%.2f%%)\n",
		st.LoadsForwarded(), 100*float64(st.LoadsForwarded())/float64(st.Loads),
		st.StoresForwarded(), 100*float64(st.StoresForwarded())/float64(st.Stores))
	fmt.Printf("dep speculation     %d violations, %d bypasses\n", st.DepViolations, st.DepBypasses)
	fmt.Printf("relocated objects   %d, space overhead %d bytes\n", res.Relocated, res.SpaceOverhead)
	fmt.Printf("heap peak           %d bytes, pages touched %d\n", st.HeapPeak, st.PagesTouched)
	if grp != nil {
		gs := grp.Stats()
		fmt.Printf("scheduling          %d harts, %d steps, %d relocations committed (%d faulted, %d crashes, %d scavenges), %d barrier drains\n",
			*harts, gs.Steps, gs.Relocations, gs.Faulted, gs.Crashes, gs.Scavenges, gs.Drains)
	}
	if daemon != nil {
		ds := daemon.Stats()
		fmt.Printf("tiering             %d wakes, %d placed, %d demoted (%d B), %d spilled (%d B), %d promoted, %d repaired, near hit rate %.2f%%\n",
			ds.Wakes, ds.Placed, ds.Demotions, ds.DemotedBytes, ds.Spills, ds.SpilledBytes, ds.Promotions, ds.Repaired, 100*ds.HitRate(0))
	}
	if tracer != nil {
		fmt.Printf("trace events        %d\n", tracer.Emitted())
	}
	if series != nil {
		fmt.Println()
		fmt.Println(series.Table())
	}
	if *metrics {
		fmt.Println()
		fmt.Println(reg.Table())
	}
	if prof != nil {
		fmt.Println()
		fmt.Println(prof.Report())
	}
	if *heatTop > 0 {
		fmt.Println()
		fmt.Println(heat.Report(*heatTop))
	}
	if *relocReport {
		fmt.Println()
		fmt.Println(spans.Report())
	}
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// logTelemetry routes plane lifecycle lines (bound address, linger
// notice) to stderr with the command prefix.
func logTelemetry(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "memfwd-sim: "+format+"\n", args...)
}

// variantOf maps the flag combination onto the paper's bar names.
func variantOf(opt, prefetch, perfect bool) memfwd.Variant {
	switch {
	case perfect:
		return memfwd.VariantPerf
	case opt && prefetch:
		return memfwd.VariantLP
	case opt:
		return memfwd.VariantL
	case prefetch:
		return memfwd.VariantNP
	default:
		return memfwd.VariantN
	}
}

// blockOf reports the prefetch block only when prefetching is on,
// matching how the experiment harness fills Run.Block.
func blockOf(prefetch bool, block int) int {
	if !prefetch {
		return 0
	}
	return block
}

// parseLines parses the -lines argument ("32,64,128").
func parseLines(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -lines value %q (want comma-separated positive sizes)", part)
		}
		out = append(out, n)
	}
	return out, nil
}
