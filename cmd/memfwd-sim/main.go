// Command memfwd-sim runs one benchmark application on the simulated
// machine and prints the full measurement record.
//
// Usage:
//
//	memfwd-sim -app health -line 64 -opt -prefetch -block 4 -seed 9
package main

import (
	"flag"
	"fmt"
	"os"

	"memfwd"
)

func main() {
	var (
		appName  = flag.String("app", "health", "application name (see -list)")
		list     = flag.Bool("list", false, "list applications and exit")
		line     = flag.Int("line", 32, "cache line size in bytes")
		optOn    = flag.Bool("opt", false, "enable the locality optimization")
		prefetch = flag.Bool("prefetch", false, "enable software prefetching")
		block    = flag.Int("block", 1, "prefetch block size in lines")
		seed     = flag.Int64("seed", 9, "workload seed")
		scale    = flag.Int("scale", 1, "workload scale factor")
		perfect  = flag.Bool("perfect", false, "perfect forwarding (Figure 10 Perf)")
		profile  = flag.Bool("profile", false, "attach the Section 3.2 forwarding profiler and print its report")
	)
	flag.Parse()

	if *list {
		for _, a := range memfwd.Apps() {
			fmt.Printf("%-10s %s\n           optimization: %s\n", a.Name, a.Description, a.Optimization)
		}
		return
	}

	a, ok := memfwd.AppByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown application %q (use -list)\n", *appName)
		os.Exit(2)
	}

	m := memfwd.NewMachine(memfwd.MachineConfig{
		LineSize:          *line,
		PerfectForwarding: *perfect,
	})
	var prof *memfwd.Profiler
	if *profile {
		prof = memfwd.AttachProfiler(m)
	}
	res := a.Run(m, memfwd.AppConfig{
		Opt:           *optOn,
		Prefetch:      *prefetch,
		PrefetchBlock: *block,
		Seed:          *seed,
		Scale:         *scale,
	})
	st := m.Finalize()

	fmt.Printf("app=%s line=%dB opt=%v prefetch=%v(block %d) seed=%d scale=%d\n",
		a.Name, *line, *optOn, *prefetch, *block, *seed, *scale)
	fmt.Printf("checksum            %d\n", res.Checksum)
	fmt.Printf("cycles              %d\n", st.Cycles)
	fmt.Printf("instructions        %d (loads %d, stores %d)\n", st.Instructions, st.Loads, st.Stores)
	fmt.Printf("slots busy/ld/st/in %d / %d / %d / %d\n", st.Slots[0], st.Slots[1], st.Slots[2], st.Slots[3])
	fmt.Printf("L1 load misses      %d (partial %d, full %d)\n",
		st.L1.Misses(0), st.L1.PartialMisses[0], st.L1.FullMisses[0])
	fmt.Printf("L1 store misses     %d\n", st.L1.Misses(1))
	fmt.Printf("L2 misses           %d\n", st.L2.Misses(0)+st.L2.Misses(1))
	fmt.Printf("bandwidth L1<->L2   %d bytes\n", st.BytesL1L2)
	fmt.Printf("bandwidth L2<->mem  %d bytes\n", st.BytesL2Mem)
	fmt.Printf("loads forwarded     %d (%.2f%%), stores forwarded %d (%.2f%%)\n",
		st.LoadsForwarded(), 100*float64(st.LoadsForwarded())/float64(st.Loads),
		st.StoresForwarded(), 100*float64(st.StoresForwarded())/float64(st.Stores))
	fmt.Printf("dep speculation     %d violations, %d bypasses\n", st.DepViolations, st.DepBypasses)
	fmt.Printf("relocated objects   %d, space overhead %d bytes\n", res.Relocated, res.SpaceOverhead)
	fmt.Printf("heap peak           %d bytes, pages touched %d\n", st.HeapPeak, st.PagesTouched)
	if prof != nil {
		fmt.Println()
		fmt.Println(prof.Report())
	}
}
