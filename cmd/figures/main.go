// Command figures regenerates every table and figure of the paper's
// evaluation section (Table 1, Figures 5, 6a, 6b, 7, 8, 9, 10a-d),
// plus the tiered-memory extension (static vs online adaptive
// relocation), and prints them as text tables.
//
// Usage:
//
//	figures                 # everything
//	figures -only fig5      # one experiment: table1, fig5, fig6, fig7,
//	                        # fig8, fig9, fig10, tier, ext
//	figures -scale 2        # larger workloads
//	figures -jobs 8         # experiment cells across 8 workers
//	                        # (results identical at any jobs count)
//	figures -only fig5 -json -sample 10000   # raw runs as JSON, each
//	                        # carrying a sampler time-series (Samples)
//	figures -json           # every run series as ONE JSON object
//	                        # keyed by figure name
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"memfwd/internal/figures"
	"memfwd/internal/pprofutil"
	"memfwd/internal/sim"
)

func main() {
	var (
		only   = flag.String("only", "", "run a single experiment (table1, fig5, fig6, fig7, fig8, fig9, fig10, tier, ext)")
		seed   = flag.Int64("seed", 9, "workload seed")
		scale  = flag.Int("scale", 1, "workload scale factor")
		asJSON = flag.Bool("json", false, "emit raw runs as JSON instead of tables (fig5/fig6/fig7/fig10/tier)")
		sample = flag.Uint64("sample", 0, "attach the sampler: a time-series point every N instructions per run, in each run's Samples (JSON) with per-phase labels")
		jobs   = flag.Int("jobs", 0, "experiment-engine worker count (0 = GOMAXPROCS); results are identical at any value")
		http   = flag.String("http", "", "serve the live telemetry plane on this address while the suite runs (e.g. 127.0.0.1:8080; /metrics, /samples, /heatmap, /spans, /events)")

		timeout      = flag.Duration("timeout", 0, "per-cell deadline (0 = unbounded); exceeding cells are marked incomplete, the rest still run")
		suiteTimeout = flag.Duration("suite-timeout", 0, "whole-pipeline deadline (0 = unbounded)")
		retries      = flag.Int("retries", 0, "re-run cells that report transient faults up to this many times")
		faultSpec    = flag.String("fault", "", "arm a deterministic fault on matching cells: kind@point[:visit] (e.g. flip@relocate.copy-write)")
		faultCell    = flag.String("fault-cell", "", "restrict -fault to cells whose label contains this substring (e.g. health/line32/L)")
		faultSeed    = flag.Int64("fault-seed", 0, "seed for the fault corruption stream (0 = -seed)")

		harts     = flag.Int("harts", 1, "hart count per cell: harts 1..N-1 race the guest with concurrent relocations under the deterministic scheduler (1 = single-hart)")
		schedSeed = flag.Int64("sched-seed", 0, "seed for the relocator-hart interleaving (0 = -seed; with -harts)")

		cpuProfile = flag.String("cpuprofile", "", "write a Go CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a Go heap profile (after GC) to this file at exit")
	)
	flag.Parse()

	if *harts < 1 || *harts > sim.MaxHarts {
		fmt.Fprintf(os.Stderr, "figures: -harts wants 1..%d (got %d)\n", sim.MaxHarts, *harts)
		os.Exit(2)
	}

	stopProf, err := pprofutil.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	cfg := figures.Config{
		Only:         *only,
		JSON:         *asJSON,
		Seed:         *seed,
		Scale:        *scale,
		Sample:       *sample,
		Jobs:         *jobs,
		JobTimeout:   *timeout,
		SuiteTimeout: *suiteTimeout,
		Retries:      *retries,
		Fault:        *faultSpec,
		FaultCell:    *faultCell,
		FaultSeed:    *faultSeed,
		HTTPAddr:     *http,
		Harts:        *harts,
		SchedSeed:    *schedSeed,
	}
	runErr := figures.Run(cfg, os.Stdout, os.Stderr)

	stopProf()
	if err := pprofutil.WriteHeap(*memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "figures:", runErr)
		if errors.Is(runErr, figures.ErrIncomplete) {
			// Partial results were written; distinguish degradation
			// from hard failure.
			os.Exit(1)
		}
		os.Exit(2)
	}
}
