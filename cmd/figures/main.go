// Command figures regenerates every table and figure of the paper's
// evaluation section (Table 1, Figures 5, 6a, 6b, 7, 8, 9, 10a-d) and
// prints them as text tables.
//
// Usage:
//
//	figures                 # everything
//	figures -only fig5      # one experiment: table1, fig5, fig6, fig7,
//	                        # fig8, fig9, fig10
//	figures -scale 2        # larger workloads
//	figures -only fig5 -json -sample 10000   # raw runs as JSON, each
//	                        # carrying a sampler time-series (Samples)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"memfwd"
)

func main() {
	var (
		only   = flag.String("only", "", "run a single experiment (table1, fig5, fig6, fig7, fig8, fig9, fig10, ext)")
		seed   = flag.Int64("seed", 9, "workload seed")
		scale  = flag.Int("scale", 1, "workload scale factor")
		asJSON = flag.Bool("json", false, "emit raw runs as JSON instead of tables (fig5/fig6/fig7/fig10)")
		sample = flag.Uint64("sample", 0, "attach the sampler: a time-series point every N instructions per run, in each run's Samples (JSON) with per-phase labels")
	)
	flag.Parse()

	o := memfwd.Options{Seed: *seed, Scale: *scale, SampleEvery: *sample}
	want := func(name string) bool { return *only == "" || *only == name }
	section := func(name string) {
		fmt.Fprintf(os.Stderr, "[figures] running %s...\n", name)
	}

	start := time.Now()

	if want("table1") {
		section("table1")
		fmt.Println(memfwd.RunTable1(o))
	}

	if want("fig5") || want("fig6") {
		section("fig5/fig6")
		lr := memfwd.RunLocality(o)
		if *asJSON {
			emitJSON(lr.Runs)
		} else {
			if want("fig5") {
				fmt.Println(lr.Figure5Table())
			}
			if want("fig6") {
				fmt.Println(lr.Figure6aTable())
				fmt.Println(lr.Figure6bTable())
			}
		}
	}

	if want("fig7") {
		section("fig7")
		pr := memfwd.RunPrefetch(o)
		if *asJSON {
			var runs []memfwd.Run
			for _, rs := range pr.Runs {
				for _, r := range rs {
					runs = append(runs, r)
				}
			}
			emitJSON(runs)
		} else {
			fmt.Println(pr.Table())
		}
	}

	if want("fig8") {
		section("fig8")
		fmt.Println(memfwd.Figure8Layout())
	}

	if want("fig9") {
		section("fig9")
		fmt.Println(memfwd.Figure9Layout(128))
	}

	if want("fig10") {
		section("fig10")
		sr := memfwd.RunSMV(o)
		if *asJSON {
			emitJSON([]memfwd.Run{sr.N, sr.L, sr.Perf})
		} else {
			for _, t := range sr.Tables() {
				fmt.Println(t)
			}
		}
	}

	if want("ext") {
		section("ext (false sharing)")
		fmt.Println(memfwd.RunFalseSharing())
	}

	fmt.Fprintf(os.Stderr, "[figures] done in %s\n", time.Since(start).Round(time.Millisecond))
}

// emitJSON routes every machine-readable output through the shared
// encoder (memfwd.WriteJSON), keeping parity with memfwd-sim -json.
func emitJSON(v interface{}) {
	if err := memfwd.WriteJSON(os.Stdout, v); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
