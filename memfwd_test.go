package memfwd

import (
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	as := Apps()
	if len(as) != 8 {
		t.Fatalf("registry has %d apps, want 8 (Table 1)", len(as))
	}
	want := []string{"compress", "eqntott", "bh", "health", "mst", "radiosity", "smv", "vis"}
	for i, name := range want {
		if as[i].Name != name {
			t.Errorf("app %d = %s, want %s", i, as[i].Name, name)
		}
		a, ok := AppByName(name)
		if !ok || a.Name != name {
			t.Errorf("AppByName(%q) failed", name)
		}
		if a.Description == "" || a.Optimization == "" {
			t.Errorf("%s: missing Table 1 metadata", name)
		}
	}
	if _, ok := AppByName("nosuch"); ok {
		t.Error("AppByName accepted an unknown name")
	}
}

func TestMustAppPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustApp did not panic")
		}
	}()
	MustApp("nosuch")
}

func TestRunOneVariants(t *testing.T) {
	a := MustApp("mst")
	o := Options{Seed: 3}
	n := RunOne(a, 64, VariantN, 0, o)
	l := RunOne(a, 64, VariantL, 0, o)
	if n.Result.Checksum != l.Result.Checksum {
		t.Fatal("N and L diverge functionally")
	}
	if n.Variant != VariantN || l.Variant != VariantL {
		t.Fatal("variant labels wrong")
	}
	if l.Result.Relocated == 0 {
		t.Fatal("L variant did not optimize")
	}
	np := RunOne(a, 64, VariantNP, 4, o)
	if np.Block != 4 || np.Result.Checksum != n.Result.Checksum {
		t.Fatal("NP variant broken")
	}
}

// TestPaperClaimFigure5 checks the paper's headline claims about
// Figure 5 on a reduced matrix:
//   - unoptimized performance generally degrades as lines lengthen;
//   - the optimized case wins at 128B for the linearization apps;
//   - speedups increase along with line size.
func TestPaperClaimFigure5(t *testing.T) {
	if testing.Short() {
		t.Skip("full locality matrix in -short mode")
	}
	lr := RunLocality(Options{Seed: 9})
	for _, name := range []string{"health", "mst", "radiosity", "vis", "eqntott"} {
		n32, _ := lr.Get(name, 32, VariantN)
		n128, _ := lr.Get(name, 128, VariantN)
		if n128.Stats.Cycles <= n32.Stats.Cycles {
			t.Errorf("%s: unoptimized should degrade with line size (%d -> %d)",
				name, n32.Stats.Cycles, n128.Stats.Cycles)
		}
		l64, _ := lr.Get(name, 64, VariantL)
		n64, _ := lr.Get(name, 64, VariantN)
		l128, _ := lr.Get(name, 128, VariantL)
		if l128.Stats.Cycles >= n128.Stats.Cycles {
			t.Errorf("%s: optimized loses at 128B", name)
		}
		sp64 := l64.Speedup(n64)
		sp128 := l128.Speedup(n128)
		if sp128 <= sp64 {
			t.Errorf("%s: speedup should grow with line size (64B %.2f, 128B %.2f)",
				name, sp64, sp128)
		}
	}
	// Compress is the exception: optimized loses at 32B lines.
	c32n, _ := lr.Get("compress", 32, VariantN)
	c32l, _ := lr.Get("compress", 32, VariantL)
	if c32l.Stats.Cycles <= c32n.Stats.Cycles {
		t.Error("compress: optimized should lose at 32B lines (the paper's exception)")
	}
	// And the figure tables render every cell.
	tab := lr.Figure5Table()
	if len(tab.Rows) != 7*3*2 {
		t.Errorf("Figure 5 table has %d rows, want 42", len(tab.Rows))
	}
	for _, tb := range []interface{ String() string }{tab, lr.Figure6aTable(), lr.Figure6bTable()} {
		if !strings.Contains(tb.String(), "health") {
			t.Error("table missing health rows")
		}
	}
}

// TestPaperClaimFigure6 checks the miss and bandwidth reductions: a
// >=35% miss reduction in a substantial fraction of cases, and lower
// bandwidth for the optimized runs at long lines.
func TestPaperClaimFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("full locality matrix in -short mode")
	}
	lr := RunLocality(Options{Seed: 9})
	big := 0
	total := 0
	for _, name := range []string{"health", "mst", "radiosity", "vis", "eqntott"} {
		for _, line := range lr.Lines {
			n, _ := lr.Get(name, line, VariantN)
			l, _ := lr.Get(name, line, VariantL)
			total++
			if float64(l.Stats.L1.Misses(0)) <= 0.65*float64(n.Stats.L1.Misses(0)) {
				big++
			}
		}
		n, _ := lr.Get(name, 128, VariantN)
		l, _ := lr.Get(name, 128, VariantL)
		if l.Stats.BytesL2Mem >= n.Stats.BytesL2Mem {
			t.Errorf("%s: optimized bandwidth did not drop at 128B (%d -> %d)",
				name, n.Stats.BytesL2Mem, l.Stats.BytesL2Mem)
		}
	}
	if big*3 < total {
		t.Errorf("only %d/%d cases show a >=35%% miss reduction; the paper reports 11/21", big, total)
	}
}

// TestPaperClaimFigure10 checks the SMV forwarding-overhead study:
// L slower than N, Perf faster than L, forwarding single-hop with a few
// percent of loads affected, and a nonzero forwarding share of the
// average load latency.
func TestPaperClaimFigure10(t *testing.T) {
	sr := RunSMV(Options{Seed: 9})
	if sr.L.Stats.Cycles <= sr.N.Stats.Cycles {
		t.Error("SMV: L should be degraded by forwarding relative to N")
	}
	if sr.Perf.Stats.Cycles >= sr.L.Stats.Cycles {
		t.Error("SMV: Perf should beat L")
	}
	fl := float64(sr.L.Stats.LoadsFwdByHops[1]) / float64(sr.L.Stats.Loads)
	if fl < 0.02 || fl > 0.20 {
		t.Errorf("SMV: single-hop load fraction %.3f outside plausible band", fl)
	}
	if sr.L.Stats.LoadFwdCycles == 0 {
		t.Error("SMV: no forwarding latency accumulated")
	}
	if sr.Perf.Stats.LoadsForwarded() != 0 {
		t.Error("SMV Perf: forwarding should never occur")
	}
	if sr.N.Stats.LoadsForwarded() != 0 {
		t.Error("SMV N: forwarding should never occur")
	}
	tabs := sr.Tables()
	if len(tabs) != 4 {
		t.Fatalf("Figure 10 has %d panels, want 4", len(tabs))
	}
}

// TestPaperClaimFigure7 checks the prefetch interaction on two
// representative list applications: LP beats L, and LP beats NP (the
// linearized layout makes block prefetching effective).
func TestPaperClaimFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("prefetch sweep in -short mode")
	}
	// The paper reports LP > max(L, NP) in four of five list apps, with
	// VIS the exception (prefetching overhead); health is the clearest
	// winner, so it carries the assertion.
	o := Options{Seed: 9}
	for _, name := range []string{"health"} {
		a := MustApp(name)
		n := RunOne(a, 32, VariantN, 0, o)
		l := RunOne(a, 32, VariantL, 0, o)
		var np, lp Run
		for _, blk := range []int{1, 2, 4, 8} {
			r1 := RunOne(a, 32, VariantNP, blk, o)
			if np.Stats == nil || r1.Stats.Cycles < np.Stats.Cycles {
				np = r1
			}
			r2 := RunOne(a, 32, VariantLP, blk, o)
			if lp.Stats == nil || r2.Stats.Cycles < lp.Stats.Cycles {
				lp = r2
			}
		}
		if lp.Stats.Cycles >= l.Stats.Cycles {
			t.Errorf("%s: LP (%d) should beat L (%d)", name, lp.Stats.Cycles, l.Stats.Cycles)
		}
		if lp.Stats.Cycles >= np.Stats.Cycles {
			t.Errorf("%s: LP (%d) should beat NP (%d)", name, lp.Stats.Cycles, np.Stats.Cycles)
		}
		if lp.Stats.Cycles >= n.Stats.Cycles {
			t.Errorf("%s: LP (%d) should beat N (%d)", name, lp.Stats.Cycles, n.Stats.Cycles)
		}
	}
}

func TestFigure8LayoutContiguous(t *testing.T) {
	tab := Figure8Layout()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		if r[5] != "true" {
			t.Errorf("chunk %d not contiguous: %v", i, r)
		}
	}
}

func TestFigure9LayoutClusters(t *testing.T) {
	tab := Figure9Layout(128)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 nodes", len(tab.Rows))
	}
	// Root and its two children (first three BFS rows) share a cluster.
	if tab.Rows[0][3] != tab.Rows[1][3] || tab.Rows[0][3] != tab.Rows[2][3] {
		t.Errorf("root's cluster not shared with children: %v", tab.Rows[:3])
	}
}

func TestRunTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all eight apps")
	}
	tab, errs := RunTable1(Options{Seed: 9})
	if len(errs) != 0 {
		t.Fatalf("incomplete cells: %v", errs)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("Table 1 rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[3] == "0.0KB" {
			t.Errorf("%s: zero space overhead", r[0])
		}
	}
}

func TestPublicOptimizationAPI(t *testing.T) {
	m := NewMachine(MachineConfig{})
	pool := NewPool(m, 1<<12)

	// Build a small list through the public API and linearize it.
	head := m.Malloc(8)
	prev := head
	for i := 0; i < 5; i++ {
		n := m.Malloc(16)
		m.StoreWord(n, uint64(i+1))
		m.StorePtr(prev, n)
		prev = n + 8
		m.Malloc(24)
	}
	n := ListLinearize(m, pool, head, ListDesc{NodeBytes: 16, NextOff: 8})
	if n != 5 {
		t.Fatalf("linearized %d nodes", n)
	}
	var sum uint64
	p := m.LoadPtr(head)
	for p != 0 {
		sum += m.LoadWord(p)
		p = m.LoadPtr(p + 8)
	}
	if sum != 15 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestTrapAPIVisible(t *testing.T) {
	m := NewMachine(MachineConfig{})
	src := m.Malloc(8)
	tgt := m.Malloc(8)
	m.StoreWord(src, 7)
	Relocate(m, src, tgt, 1)
	var got []TrapEvent
	m.SetTrap(func(ev TrapEvent) { got = append(got, ev) })
	if v := m.LoadWord(src); v != 7 {
		t.Fatalf("forwarded read = %d", v)
	}
	if len(got) != 1 || got[0].Kind != RefLoad {
		t.Fatalf("trap events: %+v", got)
	}
}

func TestRunFalseSharingTable(t *testing.T) {
	tab, errs := RunFalseSharing(Options{})
	if len(errs) != 0 {
		t.Fatalf("incomplete cells: %v", errs)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[1][1] != "0" {
		t.Errorf("relocated layout still invalidates: %v", tab.Rows[1])
	}
}

func TestOptionsNorm(t *testing.T) {
	o := Options{}.Norm()
	if o.Seed != 9 || o.Scale != 1 || len(o.Lines) != 3 || len(o.Blocks) != 4 {
		t.Fatalf("defaults: %+v", o)
	}
	o = Options{Seed: 2, Scale: 3, Lines: []int{64}, Blocks: []int{2}}.Norm()
	if o.Seed != 2 || o.Scale != 3 || len(o.Lines) != 1 || o.Blocks[0] != 2 {
		t.Fatalf("overrides lost: %+v", o)
	}
}

func TestStormExercisesFalseAlarms(t *testing.T) {
	// The storm builds chains beyond the hop limit; the cheap cycle
	// screen must fire (and find no cycle).
	m := NewMachine(MachineConfig{})
	pool := NewPool(m, 1<<14)
	a := m.Malloc(8)
	m.StoreWord(a, 3)
	for i := 0; i < 12; i++ {
		Relocate(m, a, pool.Alloc(8), 1)
	}
	if v := m.LoadWord(a); v != 3 {
		t.Fatalf("12-hop read = %d", v)
	}
	st := m.Finalize()
	if st.CycleFalseAlarms == 0 {
		t.Fatal("hop-limit false alarm never fired")
	}
	if st.CyclesDetected != 0 {
		t.Fatal("phantom cycle detected")
	}
}
