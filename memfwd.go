// Package memfwd is a library-level reproduction of "Memory Forwarding:
// Enabling Aggressive Layout Optimizations by Guaranteeing the Safety of
// Data Relocation" (Luk & Mowry, ISCA 1999).
//
// It bundles:
//
//   - a simulated 64-bit machine with tagged memory (one forwarding bit
//     per word), the forwarding dereference mechanism, the Read_FBit /
//     Unforwarded_Read / Unforwarded_Write ISA extensions, a two-level
//     cache hierarchy, and an out-of-order graduation pipeline with
//     data-dependence speculation;
//   - the relocation-based layout optimizations the mechanism enables
//     (Relocate, list linearization, subtree clustering, record
//     packing);
//   - the paper's eight benchmark applications reimplemented as guest
//     programs;
//   - experiment runners that regenerate every table and figure of the
//     paper's evaluation section.
//
// Basic use:
//
//	m := memfwd.NewMachine(memfwd.MachineConfig{LineSize: 64})
//	res := memfwd.MustApp("health").Run(m, memfwd.AppConfig{Opt: true})
//	stats := m.Finalize()
package memfwd

import (
	"fmt"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/bh"
	"memfwd/internal/apps/compress"
	"memfwd/internal/apps/eqntott"
	"memfwd/internal/apps/health"
	"memfwd/internal/apps/mst"
	"memfwd/internal/apps/radiosity"
	"memfwd/internal/apps/smv"
	"memfwd/internal/apps/vis"
	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

// Re-exported core types: the simulated machine and its configuration,
// per-run statistics, guest addresses, and the application contract.
type (
	// Machine is one simulated processor and memory system.
	Machine = sim.Machine
	// MachineConfig sizes a Machine; zero fields take defaults.
	MachineConfig = sim.Config
	// Stats is the measurement record returned by Machine.Finalize.
	Stats = sim.Stats
	// Addr is a guest virtual address.
	Addr = mem.Addr
	// App is one benchmark application.
	App = app.App
	// AppConfig selects an application run variant.
	AppConfig = app.Config
	// AppHooks carries per-run debug/test callbacks inside an AppConfig;
	// keeping them per-run (not package-level) is what makes concurrent
	// experiment cells race-free.
	AppHooks = app.Hooks
	// AppResult is what an application run reports.
	AppResult = app.Result
)

// NewMachine builds a machine (zero config fields take defaults).
func NewMachine(cfg MachineConfig) *Machine { return sim.New(cfg) }

// DefaultMachineConfig returns the baseline machine configuration.
func DefaultMachineConfig() MachineConfig { return sim.DefaultConfig() }

// apps holds the registry in the paper's Table 1 order.
var apps = []App{
	compress.App,
	eqntott.App,
	bh.App,
	health.App,
	mst.App,
	radiosity.App,
	smv.App,
	vis.App,
}

// Apps returns the eight benchmark applications in Table 1 order.
func Apps() []App {
	out := make([]App, len(apps))
	copy(out, apps)
	return out
}

// AppByName looks an application up by its paper name.
func AppByName(name string) (App, bool) {
	for _, a := range apps {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// MustApp is AppByName that panics on unknown names.
func MustApp(name string) App {
	a, ok := AppByName(name)
	if !ok {
		panic(fmt.Sprintf("memfwd: unknown application %q", name))
	}
	return a
}
