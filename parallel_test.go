package memfwd

import (
	"bytes"
	"testing"
)

// TestParallelDeterminism is the engine's core guarantee: the figure
// matrices encode byte-identically no matter how many workers ran them.
// The jobs=8 leg also exercises concurrent application runs under
// `go test -race`.
func TestParallelDeterminism(t *testing.T) {
	encode := func(jobs int) []byte {
		var buf bytes.Buffer
		lr := RunLocality(Options{Seed: 9, Lines: []int{32}, Jobs: jobs})
		if err := WriteJSON(&buf, lr.Runs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(1), encode(8)) {
		t.Fatal("RunLocality JSON differs between jobs=1 and jobs=8")
	}
}

// TestParallelProgressObserved runs a matrix with a Progress attached
// and checks the engine surfaced every cell.
func TestParallelProgressObserved(t *testing.T) {
	p := &JobProgress{}
	lr := RunLocality(Options{Seed: 9, Lines: []int{32}, Jobs: 4, Progress: p})
	if p.Done() != len(lr.Runs) {
		t.Fatalf("progress saw %d cells, matrix has %d", p.Done(), len(lr.Runs))
	}
	if p.CellWallSum() <= 0 {
		t.Fatal("no cell wall time recorded")
	}
}

func TestLocalityRunsGetMiss(t *testing.T) {
	lr := RunLocality(Options{Seed: 9, Lines: []int{32}})
	if _, ok := lr.Get("health", 32, VariantN); !ok {
		t.Fatal("known cell not found")
	}
	if _, ok := lr.Get("nosuch", 32, VariantN); ok {
		t.Fatal("unknown app found")
	}
	if _, ok := lr.Get("health", 4096, VariantN); ok {
		t.Fatal("unswept line size found")
	}
}

func TestSpeedupZeroGuard(t *testing.T) {
	var zero Run
	full := Run{Stats: &Stats{Cycles: 100}}
	if s := zero.Speedup(full); s != 0 {
		t.Fatalf("Speedup with nil stats = %v, want 0", s)
	}
	if s := full.Speedup(zero); s != 0 {
		t.Fatalf("Speedup against nil base = %v, want 0", s)
	}
	empty := Run{Stats: &Stats{}}
	if s := empty.Speedup(full); s != 0 {
		t.Fatalf("Speedup with zero cycles = %v, want 0", s)
	}
	if s := full.Speedup(Run{Stats: &Stats{Cycles: 200}}); s != 2 {
		t.Fatalf("Speedup = %v, want 2", s)
	}
}
