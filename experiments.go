package memfwd

import (
	"context"
	"fmt"
	"strings"
	"time"

	"memfwd/internal/apps/app"
	"memfwd/internal/exp"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
	"memfwd/internal/opt"
	"memfwd/internal/report"
	"memfwd/internal/sched"
	"memfwd/internal/telemetry"
	"memfwd/internal/tier"
)

// Variant names one bar of the paper's figures.
type Variant string

// The run variants used across the evaluation figures.
const (
	VariantN    Variant = "N"    // original layout
	VariantL    Variant = "L"    // locality-optimized layout
	VariantNP   Variant = "NP"   // original + software prefetch
	VariantLP   Variant = "LP"   // optimized + software prefetch
	VariantPerf Variant = "Perf" // optimized + perfect forwarding

	// The tiering experiment's variants (RunTiering).
	VariantFlat     Variant = "Flat"     // untiered machine: all memory near
	VariantStatic   Variant = "Static"   // 2 tiers, one-shot static placement pass
	VariantAdaptive Variant = "Adaptive" // 2 tiers, online adaptive migrator
)

// TierStats is the migrator daemon's accounting, attached to tiered
// runs (Run.Tier).
type TierStats = tier.Stats

// SchedStats is the multi-hart scheduling group's accounting, attached
// to runs executed with Options.Harts > 1 (Run.Sched).
type SchedStats = sched.Stats

// Run is one measured application execution. The struct is
// JSON-encodable so harnesses can export raw series
// (cmd/figures -json).
type Run struct {
	App     string
	Line    int
	Variant Variant
	Block   int `json:",omitempty"` // prefetch block size in lines
	Stats   *Stats
	Result  AppResult
	// Samples is the sampler time-series, present only when the run was
	// executed with Options.SampleEvery > 0 (or memfwd-sim
	// -sample-every); omitted from JSON otherwise, so existing encodings
	// are unchanged.
	Samples []Sample `json:",omitempty"`

	// Tier is the migrator daemon's accounting, present only on the
	// tiered variants of RunTiering; omitted from JSON otherwise, so
	// existing encodings are unchanged.
	Tier *TierStats `json:",omitempty"`

	// Sched is the scheduling group's accounting, present only when the
	// run executed with Options.Harts > 1; omitted from JSON otherwise,
	// so existing encodings are unchanged.
	Sched *SchedStats `json:",omitempty"`

	// Incomplete, when non-empty, marks a cell the engine could not
	// finish (panic, timeout, cancellation, error) with its
	// deterministic one-line reason; Stats and Result are then absent.
	// Completed cells never carry it, so existing JSON is unchanged.
	Incomplete string `json:",omitempty"`
}

// Speedup returns base.Cycles / r.Cycles, or 0 when either side has no
// cycles (missing stats or an empty run) — never NaN or +Inf.
func (r Run) Speedup(base Run) float64 {
	if r.Stats == nil || base.Stats == nil || r.Stats.Cycles == 0 {
		return 0
	}
	return float64(base.Stats.Cycles) / float64(r.Stats.Cycles)
}

// Options parameterizes the experiment runners.
type Options struct {
	Seed   int64
	Scale  int
	Lines  []int // cache line sizes for the sweep
	Blocks []int // prefetch block sizes to sweep (best is reported)

	// SampleEvery, when > 0, attaches the observability sampler to each
	// run: a time-series point every N graduated instructions (plus one
	// at every phase boundary), returned in Run.Samples.
	SampleEvery uint64

	// Jobs is the experiment-engine worker count; <= 0 takes GOMAXPROCS.
	// Every cell of a run matrix builds its own Machine, so cells execute
	// concurrently; results are byte-identical at any value.
	Jobs int

	// Progress, when non-nil, observes the engine live: jobs queued /
	// running / done and per-cell wall time (JobProgress.RegisterMetrics
	// exposes it on a metrics registry).
	Progress *JobProgress

	// JobTracer, when non-nil, receives one phaseBegin/phaseEnd trace
	// event pair per experiment cell, timestamped in wall-clock
	// microseconds — a Perfetto sink renders the pool as a span timeline.
	JobTracer *Tracer

	// Ctx, when non-nil, cancels a whole suite; a context.WithDeadline
	// is the per-suite deadline. Cells not yet started when it fires are
	// marked Incomplete ("canceled") without running.
	Ctx context.Context

	// JobTimeout, when > 0, bounds each cell's wall time; an exceeding
	// cell is marked Incomplete ("timeout") and the rest still complete.
	JobTimeout time.Duration

	// Retries is how many times a cell reporting a transient fault is
	// re-run (seeded backoff) before being marked Incomplete.
	Retries int

	// RetryBackoff is the base backoff before the first retry; <= 0
	// takes the engine default.
	RetryBackoff time.Duration

	// Fault, when non-empty, arms a deterministic fault injector on
	// matching cells, in the grammar of fault.ParseSpec:
	// "kind@point[:visit]", e.g. "flipbit@relocate.copy-write:3".
	Fault string

	// FaultCell restricts Fault to cells whose label
	// (exp.Spec.String(), e.g. "health/line32/L") contains this
	// substring; empty arms every cell.
	FaultCell string

	// FaultSeed seeds the injector's corruption stream; 0 takes Seed.
	FaultSeed int64

	// Harts, when > 1, builds every cell's machine with that many harts
	// and runs the guest inside a deterministic scheduling group
	// (internal/sched): harts 1..Harts-1 are relocator harts racing the
	// guest's loads and stores with concurrent relocations, interleaved
	// at word-access granularity under SchedSeed. App checksums and heap
	// digests are unchanged by construction (the forwarding safety
	// argument); timing moves. Harts <= 1 leaves every code path
	// byte-identical to the single-hart runner.
	Harts int

	// SchedSeed seeds the scheduling group's interleaving; 0 takes Seed.
	SchedSeed int64

	// Telemetry, when non-nil, makes every cell observable on the live
	// HTTP plane: each cell's machine gets a tracer feeding the
	// server's event hub (filtered to structural events so cache-miss
	// volume cannot flood the stream), a heat map, and a relocation
	// span table, with snapshots published at sampler cadence. Purely
	// additive: Run results and figure outputs are unchanged.
	Telemetry *telemetry.Server
}

// telemetrySampleEvery is the publication cadence (in graduated
// instructions) used when telemetry is on but no explicit SampleEvery
// was requested.
const telemetrySampleEvery = 50_000

// Norm applies the defaults used throughout the paper's evaluation.
func (o Options) Norm() Options {
	if o.Seed == 0 {
		o.Seed = 9
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Lines) == 0 {
		o.Lines = []int{32, 64, 128}
	}
	if len(o.Blocks) == 0 {
		o.Blocks = []int{1, 2, 4, 8}
	}
	return o
}

// engine translates the options into an engine configuration.
func (o Options) engine() exp.Config {
	return exp.Config{
		Jobs:       o.Jobs,
		Tracer:     o.JobTracer,
		Progress:   o.Progress,
		Ctx:        o.Ctx,
		JobTimeout: o.JobTimeout,
		Retries:    o.Retries,
		Backoff:    o.RetryBackoff,
		RetrySeed:  o.Seed,
	}
}

// armFault builds the injector for one cell, or nil when Options.Fault
// is unset or the cell label does not contain Options.FaultCell. A
// malformed spec panics: it is a harness configuration error, caught
// before any cell runs by the cmd flag parsing.
func (o Options) armFault(s exp.Spec) *fault.Injector {
	if o.Fault == "" {
		return nil
	}
	if o.FaultCell != "" && !strings.Contains(s.String(), o.FaultCell) {
		return nil
	}
	seed := o.FaultSeed
	if seed == 0 {
		seed = o.Seed
	}
	inj, err := fault.NewFromSpec(seed, o.Fault)
	if err != nil {
		panic(fmt.Sprintf("memfwd: bad fault spec %q: %v", o.Fault, err))
	}
	return inj
}

// runEngine is the resilient engine entry shared by the runners: it
// executes the matrix through exp.RunChecked and converts each JobError
// into a placeholder Run carrying the deterministic Incomplete reason,
// so tables and JSON keep their shape when cells fail.
func runEngine(o Options, specs []exp.Spec, f func(i int, s exp.Spec) Run) ([]Run, []*exp.JobError) {
	runs, errs := exp.RunChecked(o.engine(), specs, func(i int, s exp.Spec) (Run, error) {
		return f(i, s), nil
	})
	for _, e := range errs {
		runs[e.Index] = Run{
			App:        e.Spec.App,
			Line:       e.Spec.Line,
			Variant:    Variant(e.Spec.Variant),
			Block:      e.Spec.Block,
			Incomplete: e.Reason(),
		}
	}
	return runs, errs
}

// localityApps are the seven applications of Figure 5 (SMV is studied
// separately in Figure 10).
func localityApps() []App {
	var out []App
	for _, a := range apps {
		if a.Name != "smv" {
			out = append(out, a)
		}
	}
	return out
}

// RunOne executes one (app, line, variant) cell and returns its Run.
func RunOne(a App, line int, v Variant, block int, o Options) Run {
	o = o.Norm()
	mc := MachineConfig{LineSize: line}
	if o.Harts > 1 {
		mc.Harts = o.Harts
	}
	cfg := AppConfig{Seed: o.Seed, Scale: o.Scale}
	switch v {
	case VariantL:
		cfg.Opt = true
	case VariantNP:
		cfg.Prefetch = true
		cfg.PrefetchBlock = block
	case VariantLP:
		cfg.Opt = true
		cfg.Prefetch = true
		cfg.PrefetchBlock = block
	case VariantPerf:
		cfg.Opt = true
		mc.PerfectForwarding = true
	}
	m := NewMachine(mc)
	if inj := o.armFault(exp.Spec{App: a.Name, Line: line, Variant: string(v), Block: block}); inj != nil {
		m.SetFaultInjector(inj)
	}
	var series *SampleSeries
	if o.SampleEvery > 0 {
		series = &SampleSeries{Every: o.SampleEvery}
		m.SetSampleEvery(o.SampleEvery, series)
	}
	if t := o.Telemetry; t != nil {
		lt := obs.NewTracer(obs.NoClose(t.Hub()), 256)
		lt.EnableOnly(obs.KAlloc, obs.KFree, obs.KRelocate, obs.KTrap,
			obs.KPhaseBegin, obs.KPhaseEnd, obs.KSpanBegin, obs.KSpanEnd)
		m.SetTracer(lt)
		defer lt.Close() // flushes; NoClose shields the shared hub
		heat := obs.NewHeatMap(0, 0)
		m.SetHeatMap(heat)
		spans := obs.NewSpanTable(0)
		m.SetSpans(spans)
		// Publish snapshots at sampler cadence, piggybacking on the
		// user's series when one is attached. Publishing runs on this
		// cell's goroutine; the server hands out copies under its own
		// lock, so concurrent cells just overwrite each other's
		// snapshots (the live view tracks the most recent activity).
		pub := series
		if pub == nil {
			pub = &SampleSeries{}
			m.SetSampleEvery(telemetrySampleEvery, pub)
		}
		pub.OnAdd = func(obs.Sample) {
			t.PublishHeat(heat.Snapshot(32))
			t.PublishSpans(spans.Snapshot(64))
			samples := make([]obs.Sample, len(pub.Samples))
			copy(samples, pub.Samples)
			t.PublishSamples(pub.Every, samples)
		}
	}
	var guest app.Machine = m
	var grp *sched.Group
	if o.Harts > 1 {
		seed := o.SchedSeed
		if seed == 0 {
			seed = o.Seed
		}
		var err error
		grp, err = sched.New(m, sched.Config{Harts: o.Harts, Seed: seed})
		if err != nil {
			// A harness configuration error, like a malformed fault spec:
			// the cmd flag parsing validates -harts before any cell runs.
			panic(fmt.Sprintf("memfwd: bad hart count %d: %v", o.Harts, err))
		}
		defer grp.Close()
		guest = grp
	}
	res := a.Run(guest, cfg)
	if grp != nil {
		grp.Quiesce()
	}
	r := Run{App: a.Name, Line: line, Variant: v, Block: block, Stats: m.Finalize(), Result: res}
	if grp != nil {
		gs := grp.Stats()
		r.Sched = &gs
	}
	if series != nil {
		r.Samples = series.Samples
	}
	return r
}

// LocalityRuns is the Figure 5/6 measurement matrix: the seven locality
// applications, each at every line size, unoptimized and optimized.
type LocalityRuns struct {
	Lines []int
	Runs  []Run

	// Errs lists the cells the engine could not complete (their Runs
	// entries carry the matching Incomplete marker); empty on a clean
	// suite.
	Errs []*exp.JobError

	index map[runKey]int // (app, line, variant) -> Runs position
}

// incompleteCell renders the table marker for a cell the engine could
// not finish.
func incompleteCell(r Run) string {
	if r.Incomplete == "" {
		return "incomplete"
	}
	return "incomplete: " + r.Incomplete
}

type runKey struct {
	app  string
	line int
	v    Variant
}

func (lr *LocalityRuns) buildIndex() {
	lr.index = make(map[runKey]int, len(lr.Runs))
	for i, r := range lr.Runs {
		lr.index[runKey{r.App, r.Line, r.Variant}] = i
	}
}

// Get returns the run for (app, line, variant).
func (lr *LocalityRuns) Get(appName string, line int, v Variant) (Run, bool) {
	if lr.index == nil {
		lr.buildIndex()
	}
	i, ok := lr.index[runKey{appName, line, v}]
	if !ok {
		return Run{}, false
	}
	return lr.Runs[i], true
}

// RunLocality executes the full matrix behind Figures 5, 6(a) and 6(b).
func RunLocality(o Options) *LocalityRuns {
	o = o.Norm()
	lr := &LocalityRuns{Lines: o.Lines}
	var specs []exp.Spec
	for _, a := range localityApps() {
		for _, line := range o.Lines {
			for _, v := range []Variant{VariantN, VariantL} {
				specs = append(specs, exp.Spec{App: a.Name, Line: line, Variant: string(v)})
			}
		}
	}
	lr.Runs, lr.Errs = runEngine(o, specs, func(_ int, s exp.Spec) Run {
		return RunOne(MustApp(s.App), s.Line, Variant(s.Variant), 0, o)
	})
	lr.buildIndex()
	return lr
}

// Figure5Table renders execution time decomposed into the paper's four
// graduation-slot categories, normalized to each app's N case at the
// smallest line size, with the per-line-size speedup of L over N.
func (lr *LocalityRuns) Figure5Table() *report.Table {
	t := report.New(
		"Figure 5: execution time of locality optimizations (normalized slots; speedup = N/L per line size)",
		"app", "line", "case", "norm.time", "busy", "load stall", "store stall", "inst stall", "speedup")
	for _, a := range localityApps() {
		base, _ := lr.Get(a.Name, lr.Lines[0], VariantN)
		var baseSlots float64
		if base.Stats != nil {
			baseSlots = float64(base.Stats.Cycles) * 4
		}
		for _, line := range lr.Lines {
			n, _ := lr.Get(a.Name, line, VariantN)
			l, _ := lr.Get(a.Name, line, VariantL)
			for _, r := range []Run{n, l} {
				if r.Stats == nil {
					t.Add(a.Name, fmt.Sprint(line), string(r.Variant),
						incompleteCell(r), "", "", "", "", "")
					continue
				}
				sp := ""
				if r.Variant == VariantL {
					if s := l.Speedup(n); s == 0 {
						sp = "n/a"
					} else {
						sp = fmt.Sprintf("(%+.0f%%)", 100*(s-1))
					}
				}
				t.Add(a.Name, fmt.Sprint(line), string(r.Variant),
					report.Ratio(float64(r.Stats.Cycles)*4, baseSlots),
					report.Ratio(float64(r.Stats.Slots[0]), baseSlots),
					report.Ratio(float64(r.Stats.Slots[1]), baseSlots),
					report.Ratio(float64(r.Stats.Slots[2]), baseSlots),
					report.Ratio(float64(r.Stats.Slots[3]), baseSlots),
					sp)
			}
		}
	}
	return t
}

// Figure6aTable renders load D-cache misses, split into partial and
// full misses, normalized to the N case at the smallest line size.
func (lr *LocalityRuns) Figure6aTable() *report.Table {
	t := report.New(
		"Figure 6(a): load D-cache misses (normalized to N at smallest line)",
		"app", "line", "case", "norm.misses", "partial", "full")
	for _, a := range localityApps() {
		base, _ := lr.Get(a.Name, lr.Lines[0], VariantN)
		var bm float64
		if base.Stats != nil {
			bm = float64(base.Stats.L1.Misses(0))
		}
		for _, line := range lr.Lines {
			for _, v := range []Variant{VariantN, VariantL} {
				r, _ := lr.Get(a.Name, line, v)
				if r.Stats == nil {
					t.Add(a.Name, fmt.Sprint(line), string(v), incompleteCell(r), "", "")
					continue
				}
				t.Add(a.Name, fmt.Sprint(line), string(v),
					report.Ratio(float64(r.Stats.L1.Misses(0)), bm),
					report.Ratio(float64(r.Stats.L1.PartialMisses[0]), bm),
					report.Ratio(float64(r.Stats.L1.FullMisses[0]), bm))
			}
		}
	}
	return t
}

// Figure6bTable renders memory-hierarchy bandwidth: bytes moved between
// the primary and secondary caches and between the secondary cache and
// memory, normalized to the N case at the smallest line size.
func (lr *LocalityRuns) Figure6bTable() *report.Table {
	t := report.New(
		"Figure 6(b): bandwidth consumption (normalized to N at smallest line)",
		"app", "line", "case", "norm.total", "L1<->L2", "L2<->mem")
	for _, a := range localityApps() {
		base, _ := lr.Get(a.Name, lr.Lines[0], VariantN)
		var bb float64
		if base.Stats != nil {
			bb = float64(base.Stats.BytesL1L2 + base.Stats.BytesL2Mem)
		}
		for _, line := range lr.Lines {
			for _, v := range []Variant{VariantN, VariantL} {
				r, _ := lr.Get(a.Name, line, v)
				if r.Stats == nil {
					t.Add(a.Name, fmt.Sprint(line), string(v), incompleteCell(r), "", "")
					continue
				}
				t.Add(a.Name, fmt.Sprint(line), string(v),
					report.Ratio(float64(r.Stats.BytesL1L2+r.Stats.BytesL2Mem), bb),
					report.Ratio(float64(r.Stats.BytesL1L2), bb),
					report.Ratio(float64(r.Stats.BytesL2Mem), bb))
			}
		}
	}
	return t
}

// PrefetchRuns is the Figure 7 matrix: N, NP, L, LP at a fixed 32-byte
// line, where NP and LP use the best prefetch block size from the
// sweep, exactly as the paper reports them.
type PrefetchRuns struct {
	Runs map[string]map[Variant]Run

	// Errs lists the cells the engine could not complete.
	Errs []*exp.JobError
}

// RunPrefetch executes the Figure 7 experiment. The whole matrix —
// including every block size of the NP/LP sweeps — runs through the
// engine; the best block per variant is selected afterwards in the
// original iteration order, so the reported cells match the old serial
// sweep exactly.
func RunPrefetch(o Options) *PrefetchRuns {
	o = o.Norm()
	const line = 32
	var specs []exp.Spec
	for _, a := range localityApps() {
		specs = append(specs,
			exp.Spec{App: a.Name, Line: line, Variant: string(VariantN)},
			exp.Spec{App: a.Name, Line: line, Variant: string(VariantL)})
		for _, v := range []Variant{VariantNP, VariantLP} {
			for _, blk := range o.Blocks {
				specs = append(specs, exp.Spec{App: a.Name, Line: line, Variant: string(v), Block: blk})
			}
		}
	}
	runs, errs := runEngine(o, specs, func(_ int, s exp.Spec) Run {
		return RunOne(MustApp(s.App), s.Line, Variant(s.Variant), s.Block, o)
	})
	pr := &PrefetchRuns{Runs: make(map[string]map[Variant]Run), Errs: errs}
	for i, s := range specs {
		rs := pr.Runs[s.App]
		if rs == nil {
			rs = make(map[Variant]Run)
			pr.Runs[s.App] = rs
		}
		r := runs[i]
		v := Variant(s.Variant)
		// An incomplete cell stands in only until any completed cell of
		// the sweep arrives; among completed cells the original
		// iteration order still breaks ties.
		if best, swept := rs[v]; !swept {
			rs[v] = r
		} else if r.Stats != nil && (best.Stats == nil || r.Stats.Cycles < best.Stats.Cycles) {
			rs[v] = r
		}
	}
	return pr
}

// Table renders Figure 7.
func (pr *PrefetchRuns) Table() *report.Table {
	t := report.New(
		"Figure 7: interaction with software prefetching (32B lines; NP/LP use best block size)",
		"app", "case", "block", "norm.time", "speedup vs N")
	for _, a := range localityApps() {
		rs := pr.Runs[a.Name]
		n := rs[VariantN]
		var nCycles float64
		if n.Stats != nil {
			nCycles = float64(n.Stats.Cycles)
		}
		for _, v := range []Variant{VariantN, VariantNP, VariantL, VariantLP} {
			r := rs[v]
			if r.Stats == nil {
				t.Add(a.Name, string(v), "", incompleteCell(r), "")
				continue
			}
			blk := ""
			if v == VariantNP || v == VariantLP {
				blk = fmt.Sprint(r.Block)
			}
			sp := "n/a"
			if s := r.Speedup(n); s != 0 {
				sp = fmt.Sprintf("%.2f", s)
			}
			t.Add(a.Name, string(v), blk,
				report.Ratio(float64(r.Stats.Cycles), nCycles),
				sp)
		}
	}
	return t
}

// SMVRuns is the Figure 10 experiment: SMV under N, L, and Perf.
type SMVRuns struct {
	N, L, Perf Run

	// Errs lists the cells the engine could not complete.
	Errs []*exp.JobError
}

// RunSMV executes the Figure 10 experiment at the given line size.
func RunSMV(o Options) *SMVRuns {
	o = o.Norm()
	const line = 32
	specs := []exp.Spec{
		{App: "smv", Line: line, Variant: string(VariantN)},
		{App: "smv", Line: line, Variant: string(VariantL)},
		{App: "smv", Line: line, Variant: string(VariantPerf)},
	}
	runs, errs := runEngine(o, specs, func(_ int, s exp.Spec) Run {
		return RunOne(MustApp(s.App), s.Line, Variant(s.Variant), 0, o)
	})
	return &SMVRuns{N: runs[0], L: runs[1], Perf: runs[2], Errs: errs}
}

// Tables renders Figure 10's four panels.
func (sr *SMVRuns) Tables() []*report.Table {
	runs := []Run{sr.N, sr.L, sr.Perf}

	a := report.New("Figure 10(a): SMV execution time (normalized to N)",
		"case", "norm.time", "busy", "load stall", "store stall", "inst stall")
	var baseSlots float64
	if sr.N.Stats != nil {
		baseSlots = float64(sr.N.Stats.Cycles) * 4
	}
	for _, r := range runs {
		if r.Stats == nil {
			a.Add(string(r.Variant), incompleteCell(r), "", "", "", "")
			continue
		}
		a.Add(string(r.Variant),
			report.Ratio(float64(r.Stats.Cycles)*4, baseSlots),
			report.Ratio(float64(r.Stats.Slots[0]), baseSlots),
			report.Ratio(float64(r.Stats.Slots[1]), baseSlots),
			report.Ratio(float64(r.Stats.Slots[2]), baseSlots),
			report.Ratio(float64(r.Stats.Slots[3]), baseSlots))
	}

	b := report.New("Figure 10(b): SMV D-cache misses (normalized to N)",
		"case", "load misses", "store misses")
	var bl, bs float64
	if sr.N.Stats != nil {
		bl = float64(sr.N.Stats.L1.Misses(0))
		bs = float64(sr.N.Stats.L1.Misses(1))
	}
	for _, r := range runs {
		if r.Stats == nil {
			b.Add(string(r.Variant), incompleteCell(r), "")
			continue
		}
		b.Add(string(r.Variant),
			report.Ratio(float64(r.Stats.L1.Misses(0)), bl),
			report.Ratio(float64(r.Stats.L1.Misses(1)), bs))
	}

	// A run with zero loads or stores must render as zero / "n/a", not
	// NaN: divide only when the denominator is live.
	frac := func(num, den uint64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	avg := func(cycles, den uint64) string {
		if den == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2f", float64(cycles)/float64(den))
	}

	c := report.New("Figure 10(c): fraction of references forwarded (by hops)",
		"case", "loads 1 hop", "loads 2+ hops", "stores 1 hop", "stores 2+ hops")
	for _, r := range runs {
		st := r.Stats
		if st == nil {
			c.Add(string(r.Variant), incompleteCell(r), "", "", "")
			continue
		}
		l1 := frac(st.LoadsFwdByHops[1], st.Loads)
		l2 := frac(st.LoadsForwarded()-st.LoadsFwdByHops[1], st.Loads)
		s1 := frac(st.StoresFwdByHops[1], st.Stores)
		s2 := frac(st.StoresForwarded()-st.StoresFwdByHops[1], st.Stores)
		c.Add(string(r.Variant), report.Pct(l1), report.Pct(l2), report.Pct(s1), report.Pct(s2))
	}

	d := report.New("Figure 10(d): average cycles per load/store, forwarding vs ordinary",
		"case", "load avg", "load fwd part", "store avg", "store fwd part")
	for _, r := range runs {
		st := r.Stats
		if st == nil {
			d.Add(string(r.Variant), incompleteCell(r), "", "", "")
			continue
		}
		d.Add(string(r.Variant),
			avg(st.LoadCycles, st.Loads),
			avg(st.LoadFwdCycles, st.Loads),
			avg(st.StoreCycles, st.Stores),
			avg(st.StoreFwdCycles, st.Stores))
	}
	return []*report.Table{a, b, c, d}
}

// TierRuns is the tiered-memory experiment (the OBASE direction
// applied to the paper's mechanism): every application on a 2-tier
// machine whose far tier costs 3x the near miss latency, comparing a
// one-shot static placement pass (the paper's offline model: one
// demotion sweep over the heat observed so far, then silence) against
// the online adaptive migrator that keeps re-deciding residency as the
// workload's phases shift. The untiered machine is the flat reference
// both are normalized to.
type TierRuns struct {
	Runs []Run // app-major, tierVariants order per app

	// Errs lists the cells the engine could not complete.
	Errs []*exp.JobError
}

// tierVariants is the per-app column order of the tiering experiment.
var tierVariants = []Variant{VariantFlat, VariantStatic, VariantAdaptive}

// tierFigureHeatObjects sizes the heat map each tiered cell shares
// between its machine and its migrator: whole-heap coverage, because
// the migrator refuses to demote blocks the map does not track.
const tierFigureHeatObjects = 1 << 16

// RunTiering executes the tiering experiment across all eight
// applications through the engine.
func RunTiering(o Options) *TierRuns {
	o = o.Norm()
	var specs []exp.Spec
	for _, a := range apps {
		for _, v := range tierVariants {
			specs = append(specs, exp.Spec{App: a.Name, Variant: string(v)})
		}
	}
	runs, errs := runEngine(o, specs, func(_ int, s exp.Spec) Run {
		return runTierCell(MustApp(s.App), Variant(s.Variant), o)
	})
	return &TierRuns{Runs: runs, Errs: errs}
}

// runTierCell executes one (app, tier-variant) cell. The tiered
// variants share one machine-owned heat map with the migrator (full
// trap and hop attribution — the same wiring as memfwd-sim -tiers) and
// differ only in Config.OneShot; placement physics is identical.
func runTierCell(a App, v Variant, o Options) Run {
	cfg := AppConfig{Seed: o.Seed, Scale: o.Scale}
	spec := exp.Spec{App: a.Name, Variant: string(v)}
	if v == VariantFlat {
		m := NewMachine(MachineConfig{})
		if inj := o.armFault(spec); inj != nil {
			m.SetFaultInjector(inj)
		}
		res := a.Run(m, cfg)
		return Run{App: a.Name, Variant: v, Stats: m.Finalize(), Result: res}
	}
	tc := mem.DefaultTierConfig(2, DefaultMachineConfig().MemLatency)
	m := NewMachine(MachineConfig{Tiers: tc})
	if inj := o.armFault(spec); inj != nil {
		m.SetFaultInjector(inj)
	}
	h := NewHeatMap(tierFigureHeatObjects, 0)
	m.SetHeatMap(h)
	d := tier.New(m, tier.Config{
		Tiers:   tc,
		Seed:    o.Seed,
		OneShot: v == VariantStatic,
		Heat:    h,
	})
	res := a.Run(d, cfg)
	r := Run{App: a.Name, Variant: v, Stats: m.Finalize(), Result: res}
	ts := d.Stats()
	r.Tier = &ts
	return r
}

// Get returns the run for (app, variant).
func (tr *TierRuns) Get(appName string, v Variant) (Run, bool) {
	for _, r := range tr.Runs {
		if r.App == appName && r.Variant == v {
			return r, true
		}
	}
	return Run{}, false
}

// Table renders the tiering experiment: per app, each case's execution
// time normalized to the flat reference, the adaptive arm's speedup
// over the static one, and the migrator's accounting.
func (tr *TierRuns) Table() *report.Table {
	t := report.New(
		"Tiering: one-shot static vs online adaptive relocation (2 tiers, far = 3x near latency; time normalized to Flat)",
		"app", "case", "norm.time", "vs Static", "demoted", "promoted", "spilled", "near hit")
	for _, a := range apps {
		flat, _ := tr.Get(a.Name, VariantFlat)
		static, _ := tr.Get(a.Name, VariantStatic)
		for _, v := range tierVariants {
			r, _ := tr.Get(a.Name, v)
			if r.Stats == nil {
				t.Add(a.Name, string(v), incompleteCell(r), "", "", "", "", "")
				continue
			}
			var flatCycles float64
			if flat.Stats != nil {
				flatCycles = float64(flat.Stats.Cycles)
			}
			sp := ""
			if v == VariantAdaptive {
				if s := r.Speedup(static); s == 0 {
					sp = "n/a"
				} else {
					sp = fmt.Sprintf("(%+.1f%%)", 100*(s-1))
				}
			}
			demoted, promoted, spilled, hit := "", "", "", ""
			if ts := r.Tier; ts != nil {
				demoted = fmt.Sprint(ts.Demotions)
				promoted = fmt.Sprint(ts.Promotions)
				spilled = fmt.Sprint(ts.Spills)
				hit = report.Pct(ts.HitRate(0))
			}
			t.Add(a.Name, string(v),
				report.Ratio(float64(r.Stats.Cycles), flatCycles),
				sp, demoted, promoted, spilled, hit)
		}
	}
	return t
}

// RunTable1 regenerates Table 1: each application, the optimization
// applied, and the measured space overhead of relocation. The second
// return lists cells the engine could not complete (their rows carry
// the incomplete marker); nil on a clean run.
func RunTable1(o Options) (*report.Table, []*exp.JobError) {
	o = o.Norm()
	specs := make([]exp.Spec, len(apps))
	for i, a := range apps {
		specs[i] = exp.Spec{App: a.Name, Line: 128, Variant: string(VariantL)}
	}
	runs, errs := runEngine(o, specs, func(_ int, s exp.Spec) Run {
		return RunOne(MustApp(s.App), s.Line, Variant(s.Variant), 0, o)
	})
	t := report.New("Table 1: applications and optimizations",
		"app", "optimization", "relocated objs", "space overhead", "insts (opt run)")
	for i, a := range apps {
		r := runs[i]
		if r.Stats == nil {
			t.Add(a.Name, a.Optimization, incompleteCell(r), "", "")
			continue
		}
		t.Add(a.Name, a.Optimization, fmt.Sprint(r.Result.Relocated),
			report.KB(r.Result.SpaceOverhead), fmt.Sprint(r.Stats.Instructions))
	}
	return t, errs
}

// RunLines executes one application under one variant across several
// line sizes through the engine — the sweep behind memfwd-sim -lines.
// The second return lists cells the engine could not complete (their
// Runs carry the Incomplete marker); nil on a clean sweep.
func RunLines(a App, lines []int, v Variant, block int, o Options) ([]Run, []*exp.JobError) {
	o = o.Norm()
	specs := make([]exp.Spec, len(lines))
	for i, line := range lines {
		specs[i] = exp.Spec{App: a.Name, Line: line, Variant: string(v), Block: block}
	}
	return runEngine(o, specs, func(_ int, s exp.Spec) Run {
		return RunOne(a, s.Line, Variant(s.Variant), s.Block, o)
	})
}

// Figure8Layout demonstrates the eqntott layout transformation on a
// miniature structure: records and their arrays scattered before, one
// contiguous chunk per record after, in hash order (Figure 8).
func Figure8Layout() *report.Table {
	m := NewMachine(MachineConfig{})
	pool := opt.NewPool(m, 1<<12)
	t := report.New("Figure 8: eqntott PTERM layout before/after relocation",
		"slot", "record before", "array before", "record after", "array after", "contiguous")

	type rec struct{ r, a Addr }
	var before []rec
	for i := 0; i < 4; i++ {
		r := m.Malloc(24)
		m.Malloc(40) // scatter
		arr := m.Malloc(32)
		m.StorePtr(r+8, arr)
		before = append(before, rec{r, arr})
	}
	var prevEnd Addr
	for i, rc := range before {
		chunk := pool.Alloc(24 + 32)
		opt.Relocate(m, rc.r, chunk, 3)
		opt.Relocate(m, rc.a, chunk+24, 4)
		m.StorePtr(chunk+8, chunk+24)
		contig := i == 0 || chunk == prevEnd
		prevEnd = chunk + 56
		t.Addf(i, fmt.Sprintf("%#x", rc.r), fmt.Sprintf("%#x", rc.a),
			fmt.Sprintf("%#x", chunk), fmt.Sprintf("%#x", chunk+24), contig)
	}
	return t
}

// Figure9Layout demonstrates subtree clustering on a small binary tree:
// node addresses before (creation order) and after (balanced clusters).
func Figure9Layout(clusterBytes uint64) *report.Table {
	m := NewMachine(MachineConfig{})
	pool := opt.NewPool(m, 1<<12)
	t := report.New("Figure 9: subtree clustering layout",
		"node", "before", "after", "cluster#")

	// Build a depth-3 complete binary tree, pre-order, scattered.
	desc := opt.TreeDesc{NodeBytes: 24, ChildOffs: []uint64{8, 16}}
	rootHandle := m.Malloc(8)
	var nodes []Addr
	var build func(handle Addr, d int)
	build = func(handle Addr, d int) {
		if d == 0 {
			return
		}
		m.Malloc(40)
		n := m.Malloc(24)
		m.StoreWord(n, uint64(len(nodes)+1))
		m.StorePtr(handle, n)
		nodes = append(nodes, n)
		build(n+8, d-1)
		build(n+16, d-1)
	}
	build(rootHandle, 3)
	opt.SubtreeCluster(m, pool, rootHandle, desc, clusterBytes)

	// Re-walk breadth-first to report new addresses.
	queue := []Addr{m.LoadPtr(rootHandle)}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == 0 {
			continue
		}
		t.Addf(m.LoadWord(n), fmt.Sprintf("%#x", nodes[m.LoadWord(n)-1]),
			fmt.Sprintf("%#x", n), uint64(n)/clusterBytes%1000)
		queue = append(queue, m.LoadPtr(n+8), m.LoadPtr(n+16))
	}
	return t
}

// RunFalseSharing demonstrates the multiprocessor false-sharing
// application of Section 2.2 on the mp extension: four processors
// increment per-processor counters that share one cache line, then the
// counters are relocated one-per-line (forwarding-safe) and the
// ping-pong disappears. Both layouts run as independent engine jobs;
// the second return lists any the engine could not complete.
func RunFalseSharing(o Options) (*report.Table, []*exp.JobError) {
	t := report.New("Extension: false sharing cured by forwarding-safe relocation (Section 2.2)",
		"layout", "invalidations", "false-sharing", "cycles", "speedup")
	type fsRun struct {
		inv, falseInv uint64
		cycles        int64
	}
	run := func(relocate bool) fsRun {
		s := NewSystem(SystemConfig{Processors: 4, LineSize: 64})
		base := s.Heap.Alloc(4 * 8)
		counters := make([]Addr, 4)
		for i := range counters {
			counters[i] = base + Addr(i*8)
		}
		if relocate {
			s.RelocatePadded(counters)
		}
		for r := 0; r < 1000; r++ {
			for i, c := range s.CPUs {
				v := c.LoadWord(counters[i])
				c.StoreWord(counters[i], v+1)
				c.Inst(6)
			}
		}
		return fsRun{s.Stats.Invalidations, s.Stats.FalseInvalidations, s.Cycles()}
	}
	specs := []exp.Spec{
		{App: "false-sharing", Variant: "packed"},
		{App: "false-sharing", Variant: "relocated"},
	}
	runs, errs := exp.RunChecked(o.engine(), specs, func(_ int, s exp.Spec) (fsRun, error) {
		return run(s.Variant == "relocated"), nil
	})
	if len(errs) > 0 {
		for _, e := range errs {
			t.Addf(e.Spec.Variant, "incomplete: "+e.Reason(), "", "", "")
		}
		return t, errs
	}
	p, r := runs[0], runs[1]
	t.Addf("packed (one line)", p.inv, p.falseInv, p.cycles, "")
	t.Addf("relocated (one line each)", r.inv, r.falseInv, r.cycles,
		report.Ratio(float64(p.cycles), float64(r.cycles)))
	return t, errs
}
