package memfwd

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden tests pin the deterministic layout demonstrations (Figures 8
// and 9) byte for byte. Regenerate with:
//
//	UPDATE_GOLDEN=1 go test -run TestGolden .
var update = os.Getenv("UPDATE_GOLDEN") != ""

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1): %v", err)
	}
	if string(want) != got {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenFigure8(t *testing.T) {
	checkGolden(t, "figure8.golden", Figure8Layout().String())
}

func TestGoldenFigure9(t *testing.T) {
	checkGolden(t, "figure9.golden", Figure9Layout(128).String())
}
