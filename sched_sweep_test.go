package memfwd

import (
	"bytes"
	"fmt"
	"testing"

	"memfwd/internal/oracle"
	"memfwd/internal/sched"
	"memfwd/internal/sim"
)

// TestScheduleSweep is the whole-benchmark-suite form of the
// concurrency contract: every registered application, run with its
// layout optimizations on, must produce the same checksum and the same
// heap digest (modulo forwarding) whether it runs single-hart or with
// relocator harts racing it — at any hart count, under any scheduling
// seed. The reference for each app is its plain single-hart run.
func TestScheduleSweep(t *testing.T) {
	type ref struct {
		sum uint64
		dig uint64
	}
	cfg := AppConfig{Opt: true, Seed: 9, Scale: 1}
	refs := map[string]ref{}
	for _, a := range Apps() {
		m := sim.New(sim.Config{})
		res := a.Run(m, cfg)
		m.Finalize()
		d, err := oracle.DigestModuloForwarding(m.Mem, m.Fwd, m.Alloc)
		if err != nil {
			t.Fatalf("%s: reference digest: %v", a.Name, err)
		}
		refs[a.Name] = ref{sum: res.Checksum, dig: d}
	}

	// harts=1 has no relocator harts — the group is transparent and the
	// seed is inert, so one seed covers it; the racing hart counts get
	// the full seed sweep. -short trims seeds, never hart counts or
	// apps: every cell shape still runs.
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}
	grid := []struct {
		harts int
		seeds []int64
	}{
		{1, []int64{1}},
		{2, seeds},
		{4, seeds},
	}
	for _, cell := range grid {
		harts := cell.harts
		for _, schedSeed := range cell.seeds {
			for _, a := range Apps() {
				a := a
				name := fmt.Sprintf("%s/harts=%d/seed=%d", a.Name, harts, schedSeed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					m := sim.New(sim.Config{Harts: harts})
					g, err := sched.New(m, sched.Config{Harts: harts, Seed: schedSeed})
					if err != nil {
						t.Fatal(err)
					}
					defer g.Close()
					res := a.Run(g, cfg)
					g.Quiesce()
					m.Finalize()
					want := refs[a.Name]
					if res.Checksum != want.sum {
						t.Errorf("checksum %#x, want %#x", res.Checksum, want.sum)
					}
					d, err := oracle.DigestModuloForwarding(m.Mem, m.Fwd, m.Alloc)
					if err != nil {
						t.Fatal(err)
					}
					if d != want.dig {
						t.Errorf("digest %#x, want %#x", d, want.dig)
					}
					if err := oracle.CheckMachine(m); err != nil {
						t.Errorf("invariants: %v", err)
					}
				})
			}
		}
	}
}

// TestScheduleSweepEngineDeterminism: the experiment engine encodes
// multi-hart matrices byte-identically at any worker count, and a
// harts=1 Options value leaves the encoding byte-identical to one that
// never mentions harts at all (the -harts 1 CLI default cannot perturb
// the published figures).
func TestScheduleSweepEngineDeterminism(t *testing.T) {
	encode := func(o Options) []byte {
		var buf bytes.Buffer
		lr := RunLocality(o)
		if err := WriteJSON(&buf, lr.Runs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	multi1 := encode(Options{Seed: 9, Lines: []int{32}, Jobs: 1, Harts: 4, SchedSeed: 3})
	multi8 := encode(Options{Seed: 9, Lines: []int{32}, Jobs: 8, Harts: 4, SchedSeed: 3})
	if !bytes.Equal(multi1, multi8) {
		t.Error("harts=4 RunLocality JSON differs between jobs=1 and jobs=8")
	}
	plain := encode(Options{Seed: 9, Lines: []int{32}})
	one := encode(Options{Seed: 9, Lines: []int{32}, Harts: 1})
	if !bytes.Equal(plain, one) {
		t.Error("harts=1 changes the RunLocality encoding (must be byte-identical to no harts option)")
	}
}

// TestRunOneSchedStats: RunOne surfaces the group's accounting on
// multi-hart runs and omits it entirely otherwise.
func TestRunOneSchedStats(t *testing.T) {
	a := MustApp("health")
	r := RunOne(a, 32, VariantL, 0, Options{Seed: 9, Harts: 4, SchedSeed: 2})
	if r.Sched == nil {
		t.Fatal("harts=4 run carries no Sched stats")
	}
	if r.Sched.Relocations == 0 {
		t.Error("harts=4 run committed no concurrent relocations")
	}
	single := RunOne(a, 32, VariantL, 0, Options{Seed: 9})
	if single.Sched != nil {
		t.Error("single-hart run unexpectedly carries Sched stats")
	}
	if single.Result.Checksum != r.Result.Checksum {
		t.Errorf("checksum diverged: harts=4 %#x, harts=1 %#x", r.Result.Checksum, single.Result.Checksum)
	}
}
