package memfwd

import (
	"io"
	"time"

	"memfwd/internal/core"
	"memfwd/internal/exp"
	"memfwd/internal/fprof"
	"memfwd/internal/mp"
	"memfwd/internal/obs"
	"memfwd/internal/ooc"
	"memfwd/internal/opt"
	"memfwd/internal/telemetry"
)

// Re-exported forwarding-mechanism types (internal/core).
type (
	// TrapEvent describes one forwarded reference, delivered to a
	// user-level trap handler (Section 3.2).
	TrapEvent = core.Event
	// TrapHandler is installed with Machine.SetTrap.
	TrapHandler = core.TrapHandler
	// RefKind distinguishes loads from stores in trap events.
	RefKind = core.Kind
)

// Trap event reference kinds.
const (
	RefLoad  RefKind = core.Load
	RefStore RefKind = core.Store
)

// Re-exported layout-optimization types (internal/opt).
type (
	// Pool hands out relocation targets from contiguous memory.
	Pool = opt.Pool
	// ListDesc describes a linked list's node layout for ListLinearize.
	ListDesc = opt.ListDesc
	// TreeDesc describes a tree's node layout for SubtreeCluster.
	TreeDesc = opt.TreeDesc
)

// NewPool creates a relocation-target pool with chunkBytes arenas.
func NewPool(m *Machine, chunkBytes uint64) *Pool { return opt.NewPool(m, chunkBytes) }

// Relocate moves nWords words from src to tgt, leaving forwarding
// addresses behind (Figure 4a).
func Relocate(m *Machine, src, tgt Addr, nWords int) { opt.Relocate(m, src, tgt, nWords) }

// ListLinearize packs the list whose head pointer is stored at
// headHandle into consecutive pool addresses (Figure 4b). Returns the
// number of nodes relocated.
func ListLinearize(m *Machine, p *Pool, headHandle Addr, d ListDesc) int {
	return opt.ListLinearize(m, p, headHandle, d)
}

// SubtreeCluster packs the tree rooted at the pointer stored in
// rootHandle into clusterBytes-sized balanced clusters (Figure 9).
// Returns the number of nodes relocated.
func SubtreeCluster(m *Machine, p *Pool, rootHandle Addr, d TreeDesc, clusterBytes uint64) int {
	return opt.SubtreeCluster(m, p, rootHandle, d, clusterBytes)
}

// ColorPool allocates relocation targets constrained to one cache
// region (color), for the conflict-avoidance optimization of
// Section 2.2.
type ColorPool = opt.ColorPool

// NewColorPool creates a coloring pool for a cache whose one-way span
// is waySizeBytes, split into colors regions.
func NewColorPool(m *Machine, waySizeBytes uint64, colors int) *ColorPool {
	return opt.NewColorPool(m, waySizeBytes, colors)
}

// ColorRelocate moves the nBytes object at addr into the given color's
// cache region, forwarding-safe. Returns the new address.
func ColorRelocate(m *Machine, p *ColorPool, addr Addr, nBytes uint64, color int) Addr {
	return opt.ColorRelocate(m, p, addr, nBytes, color)
}

// Re-exported observability types (internal/obs): the tracing, metrics,
// and sampling layer. Attach with Machine.SetTracer /
// Machine.SetSampleEvery / Machine.RegisterMetrics.
type (
	// Tracer is the bounded event-trace buffer; nil is a valid no-op.
	Tracer = obs.Tracer
	// TraceEvent is one structured trace record.
	TraceEvent = obs.Event
	// TraceEventKind identifies the type of a TraceEvent.
	TraceEventKind = obs.Kind
	// TraceSink receives event batches from a Tracer.
	TraceSink = obs.Sink
	// MemorySink retains events in memory (test support).
	MemorySink = obs.MemorySink
	// MetricsRegistry is the named counter/gauge/histogram registry.
	MetricsRegistry = obs.Registry
	// Sample is one point of the sampler time-series.
	Sample = obs.Sample
	// SampleSeries is the ordered sampler time-series.
	SampleSeries = obs.Series
	// HeatMap is the bounded, epoch-decayed per-object access profile;
	// attach with Machine.SetHeatMap.
	HeatMap = obs.HeatMap
	// HeatObject is one object's accumulated heat profile.
	HeatObject = obs.HeatObject
	// HeatSnapshot is an immutable heat-map digest.
	HeatSnapshot = obs.HeatSnapshot
	// SpanTable records relocation spans from TryRelocate; attach with
	// Machine.SetSpans.
	SpanTable = obs.SpanTable
	// RelocationSpan is one structured two-phase-commit record.
	RelocationSpan = obs.RelocationSpan
	// SpanSnapshot is an immutable span-table digest.
	SpanSnapshot = obs.SpanSnapshot
	// EventBroadcaster fans live trace events out to bounded,
	// drop-counting subscribers (the /events hub).
	EventBroadcaster = obs.Broadcaster
	// EventSubscriber is one bounded queue of live event batches.
	EventSubscriber = obs.Subscriber
)

// Trace event kinds.
const (
	TraceAlloc        TraceEventKind = obs.KAlloc
	TraceFree         TraceEventKind = obs.KFree
	TraceRelocate     TraceEventKind = obs.KRelocate
	TraceForwardHop   TraceEventKind = obs.KForwardHop
	TraceTrap         TraceEventKind = obs.KTrap
	TraceCacheMiss    TraceEventKind = obs.KCacheMiss
	TraceDepViolation TraceEventKind = obs.KDepViolation
	TracePhaseBegin   TraceEventKind = obs.KPhaseBegin
	TracePhaseEnd     TraceEventKind = obs.KPhaseEnd
	TraceSpanBegin    TraceEventKind = obs.KSpanBegin
	TraceSpanEnd      TraceEventKind = obs.KSpanEnd
)

// NewTracer builds a tracer flushing to sink every bufEvents events
// (<= 0 takes the default).
func NewTracer(sink TraceSink, bufEvents int) *Tracer { return obs.NewTracer(sink, bufEvents) }

// NewRingTracer builds a sinkless tracer retaining the last n events.
func NewRingTracer(n int) *Tracer { return obs.NewRing(n) }

// NewNDJSONSink writes one JSON object per event per line to w.
func NewNDJSONSink(w io.Writer) TraceSink { return obs.NewNDJSONSink(w) }

// NewPerfettoSink writes a Chrome/Perfetto trace_event JSON array to w;
// open the result in chrome://tracing or ui.perfetto.dev.
func NewPerfettoSink(w io.Writer) TraceSink { return obs.NewPerfettoSink(w) }

// MultiSink fans one tracer out to several sinks.
func MultiSink(sinks ...TraceSink) TraceSink { return obs.MultiSink(sinks...) }

// NoCloseSink shields a shared sink (typically an EventBroadcaster)
// from the Close of short-lived tracers writing into it.
func NoCloseSink(s TraceSink) TraceSink { return obs.NoClose(s) }

// NewEventBroadcaster returns an empty live-event hub.
func NewEventBroadcaster() *EventBroadcaster { return obs.NewBroadcaster() }

// NewHeatMap builds a per-object heat map bounded to maxObjects entries
// decaying every epochEvery accesses (<= 0 takes the defaults).
func NewHeatMap(maxObjects int, epochEvery uint64) *HeatMap {
	return obs.NewHeatMap(maxObjects, epochEvery)
}

// NewSpanTable builds a relocation-span table retaining the most recent
// capacity spans (<= 0 takes the default).
func NewSpanTable(capacity int) *SpanTable { return obs.NewSpanTable(capacity) }

// TelemetryServer is the live HTTP telemetry plane: /metrics, /samples,
// /heatmap, /spans, and the /events NDJSON stream.
type TelemetryServer = telemetry.Server

// StartTelemetry binds the telemetry server to addr (":0" picks a free
// port); wire it to experiments via Options.Telemetry and stop it with
// Close.
func StartTelemetry(addr string) (*TelemetryServer, error) { return telemetry.Start(addr) }

// TelemetryPlane is a TelemetryServer plus the shared boot/linger/close
// lifecycle: Boot logs the bound address, Shutdown lingers at most once
// and closes the server gracefully no matter how many times it runs.
type TelemetryPlane = telemetry.Plane

// BootTelemetry starts a telemetry plane on addr. linger is how long
// Shutdown keeps the server reachable after the run (0 to stop
// immediately); logf receives human-readable lifecycle lines (nil
// discards them).
func BootTelemetry(addr string, linger time.Duration, logf func(string, ...any)) (*TelemetryPlane, error) {
	return telemetry.Boot(addr, linger, logf)
}

// NewMetricsRegistry returns an empty metrics registry; populate it
// with Machine.RegisterMetrics and Profiler.RegisterMetrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// JobProgress observes the parallel experiment engine live: jobs
// queued / running / done and per-cell wall time. Attach one via
// Options.Progress and expose it with RegisterMetrics; the zero value
// is ready to use and safe for concurrent access.
type JobProgress = exp.Progress

// JobError describes one experiment cell the engine could not complete
// (panic, timeout, cancellation, or error); its Reason() is the
// deterministic one-liner the figure output carries as "incomplete".
type JobError = exp.JobError

// Profiler is the Section 3.2 forwarding profiler: attach it to a
// machine and it records, per static site, every reference that needed
// the forwarding safety net.
type Profiler = fprof.Profiler

// AttachProfiler installs a forwarding profiler on m (replacing any
// trap handler).
func AttachProfiler(m *Machine) *Profiler { return fprof.Attach(m) }

// Multiprocessor extension (Section 2.2's false-sharing application).
type (
	// System is a small cache-coherent shared-memory multiprocessor.
	System = mp.System
	// SystemConfig sizes a System.
	SystemConfig = mp.Config
	// SystemCPU is one processor of a System.
	SystemCPU = mp.CPU
)

// NewSystem builds a multiprocessor (zero config fields defaulted).
func NewSystem(cfg SystemConfig) *System { return mp.New(cfg) }

// Out-of-core extension (Section 2.2's closing observation: relocation
// improves locality within pages, and hence on disk).
type (
	// PagedStore is a page-grained, fault-counting view of tagged
	// memory with forwarding.
	PagedStore = ooc.Store
	// PagedConfig sizes a PagedStore.
	PagedConfig = ooc.Config
)

// NewPagedStore builds an out-of-core store (zero fields defaulted).
func NewPagedStore(cfg PagedConfig) *PagedStore { return ooc.New(cfg) }
